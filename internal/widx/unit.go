// Package widx models the Widx accelerator of Section 4: a dispatcher unit
// that hashes probe keys, a set of walker units that traverse hash-bucket
// node lists concurrently, and an output producer that stores matches — all
// built from the same 2-stage, 32-register, 64-bit RISC unit executing the
// ISA of internal/isa, communicating through small decoupling queues, and
// sharing the host core's MMU and cache hierarchy (internal/mem).
//
// The model is execution-driven: each unit interprets its real program
// against the simulated address space, so the functional results (which keys
// match, what payloads are emitted) are produced by the same instructions
// whose timing is being measured, exactly as on hardware. Timing is tracked
// per unit with the cycle categories the paper reports in Figures 8 and 9:
// computation, memory, TLB and idle (waiting on the dispatcher).
package widx

import (
	"fmt"

	"widx/internal/isa"
	"widx/internal/mem"
	"widx/internal/vm"
)

// maxInstructionsPerItem bounds a single work item's execution so that a
// buggy program (for example a walk over a corrupted, cyclic node list)
// fails loudly instead of hanging the simulation.
const maxInstructionsPerItem = 1 << 20

// ItemResult reports the execution of one work item on one unit.
type ItemResult struct {
	// StartCycle and FinishCycle bound the item's execution.
	StartCycle  uint64
	FinishCycle uint64
	// CompCycles is time spent executing non-memory instructions.
	CompCycles uint64
	// MemCycles is time stalled waiting for the memory hierarchy (post
	// translation).
	MemCycles uint64
	// TLBCycles is time stalled waiting for address translation.
	TLBCycles uint64
	// QueueStall is time spent blocked at an EMIT because the output queue
	// was full (backpressure imposed by the scheduler); it is excluded from
	// Busy so a stalled dispatcher does not count as doing useful work.
	QueueStall uint64
	// Emitted holds the values pushed to the output queue, one slice per
	// EMIT executed, in program order.
	Emitted [][]uint64
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// MemOps is the number of memory operations issued.
	MemOps uint64
}

// Busy returns the cycles the unit was occupied by this item, excluding time
// blocked on output-queue backpressure.
func (r ItemResult) Busy() uint64 { return r.FinishCycle - r.StartCycle - r.QueueStall }

// UnitState is where a stepped unit is paused. A unit is a resumable
// coroutine over its program: it executes computation locally and yields to
// the scheduler at every interaction with shared state (a memory access or a
// queue push), so the scheduler can interleave all units in global cycle
// order against the shared hierarchy.
type UnitState uint8

const (
	// UnitIdle: no work item is bound; the unit waits for the scheduler to
	// Start it on the next input. After an item finishes, the unit returns
	// to UnitIdle and the finished ItemResult is available via LastResult.
	UnitIdle UnitState = iota
	// UnitWaitMem: paused immediately before a memory instruction; the
	// access wants to issue at WantCycle and is performed by GrantMem.
	UnitWaitMem
	// UnitWaitEmit: paused at an EMIT; the push happens when the scheduler
	// grants queue space via GrantEmit.
	UnitWaitEmit
)

// String names the state.
func (s UnitState) String() string {
	switch s {
	case UnitIdle:
		return "idle"
	case UnitWaitMem:
		return "wait-mem"
	case UnitWaitEmit:
		return "wait-emit"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Unit is one Widx processing element executing a fixed program, with
// registers that persist across work items (constants are loaded once at
// configuration time; the output producer exploits persistence for its write
// cursor).
type Unit struct {
	name string
	prog *isa.Program
	hier *mem.Hierarchy
	as   *vm.AddressSpace

	regs [isa.NumRegs]uint64

	// Stepper state: the in-flight work item, the local clock, and the
	// program counter the unit is paused at.
	state UnitState
	pc    int
	cycle uint64
	item  ItemResult
}

// NewUnit builds a unit for the given validated program. The program's
// constant registers are loaded immediately (the control-block load).
func NewUnit(name string, prog *isa.Program, hier *mem.Hierarchy, as *vm.AddressSpace) (*Unit, error) {
	if prog == nil {
		return nil, fmt.Errorf("widx: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if hier == nil || as == nil {
		return nil, fmt.Errorf("widx: unit %q needs a memory hierarchy and an address space", name)
	}
	u := &Unit{name: name, prog: prog, hier: hier, as: as}
	u.Reset()
	return u, nil
}

// Name returns the unit's diagnostic name.
func (u *Unit) Name() string { return u.name }

// Kind returns the unit kind of the loaded program.
func (u *Unit) Kind() isa.UnitKind { return u.prog.Kind }

// Program returns the loaded program.
func (u *Unit) Program() *isa.Program { return u.prog }

// Reset reloads the constant registers and clears the rest, as the
// configuration step (Section 4.3) does. It also clears the stepper state,
// abandoning any in-flight work item.
func (u *Unit) Reset() {
	for i := range u.regs {
		u.regs[i] = 0
	}
	for r, v := range u.prog.ConstRegs {
		u.regs[r] = v
	}
	u.state = UnitIdle
	u.pc = 0
	u.cycle = 0
	u.item = ItemResult{}
}

// Reg returns the current value of a register (for tests and diagnostics).
func (u *Unit) Reg(r isa.Reg) uint64 { return u.regs[r] }

// readReg reads a register; r0 is hardwired to zero.
func (u *Unit) readReg(r isa.Reg) uint64 {
	if r == 0 {
		return 0
	}
	return u.regs[r]
}

// writeReg writes a register; writes to r0 are discarded.
func (u *Unit) writeReg(r isa.Reg, v uint64) {
	if r == 0 {
		return
	}
	u.regs[r] = v
}

// shiftVal applies the fused-op shift to v: positive shifts left, negative
// shifts right (logical).
func shiftVal(v uint64, shift int8) uint64 {
	switch {
	case shift > 0:
		return v << uint(shift)
	case shift < 0:
		return v >> uint(-shift)
	default:
		return v
	}
}

// State reports where the unit is paused.
func (u *Unit) State() UnitState { return u.state }

// WantCycle is the cycle of the unit's pending shared-state interaction: the
// cycle its next memory access wants to issue at (UnitWaitMem) or the cycle
// its EMIT is ready to push at (UnitWaitEmit). Only meaningful while paused.
func (u *Unit) WantCycle() uint64 { return u.cycle }

// LastResult returns the most recently finished work item's result. It is
// meaningful while the unit is UnitIdle after at least one completed item.
func (u *Unit) LastResult() ItemResult { return u.item }

// Start binds a work item whose inputs become available at startCycle and
// executes until the first yield point (a memory access, an EMIT, or item
// completion). The inputs are bound to the program's InputRegs in order;
// missing inputs are an error, extra inputs are ignored.
func (u *Unit) Start(inputs []uint64, startCycle uint64) error {
	if u.state != UnitIdle {
		return fmt.Errorf("widx: unit %q started while %s", u.name, u.state)
	}
	if len(inputs) < len(u.prog.InputRegs) {
		return fmt.Errorf("widx: unit %q expects %d inputs, got %d",
			u.name, len(u.prog.InputRegs), len(inputs))
	}
	for i, r := range u.prog.InputRegs {
		u.writeReg(r, inputs[i])
	}
	u.item = ItemResult{StartCycle: startCycle}
	u.cycle = startCycle
	u.pc = 0
	return u.advance()
}

// GrantMem performs the memory access the unit is paused at, at the cycle it
// wanted (contention delays are modelled inside the hierarchy), then resumes
// execution to the next yield point.
func (u *Unit) GrantMem() error {
	if u.state != UnitWaitMem {
		return fmt.Errorf("widx: unit %q granted memory while %s", u.name, u.state)
	}
	in := u.prog.Code[u.pc]
	addr := u.readReg(in.SrcA) + uint64(in.Imm)
	var typ mem.AccessType
	switch in.Op {
	case isa.LD:
		typ = mem.Load
	case isa.ST:
		typ = mem.Store
	default:
		typ = mem.Prefetch
	}
	r := u.hier.Access(addr, u.cycle, typ)
	u.item.Instructions++
	u.item.MemOps++
	// Split the stall into translation time and memory time.
	u.item.TLBCycles += r.TLBReadyCycle - u.cycle
	if r.CompleteCycle > r.TLBReadyCycle {
		u.item.MemCycles += r.CompleteCycle - r.TLBReadyCycle
	}
	switch in.Op {
	case isa.LD:
		u.writeReg(in.Dst, u.as.Read64(addr))
	case isa.ST:
		u.as.Write64(addr, u.readReg(in.SrcB))
	}
	if r.CompleteCycle > u.cycle {
		u.cycle = r.CompleteCycle
	} else {
		u.cycle++
	}
	u.pc++
	return u.advance()
}

// GrantEmit retires the EMIT the unit is paused at. The push happens at
// cycle `at` (>= WantCycle when the scheduler held the unit back for queue
// space; the difference is accounted as QueueStall). It returns the emitted
// tuple and resumes execution to the next yield point.
func (u *Unit) GrantEmit(at uint64) ([]uint64, error) {
	if u.state != UnitWaitEmit {
		return nil, fmt.Errorf("widx: unit %q granted emit while %s", u.name, u.state)
	}
	if at > u.cycle {
		u.item.QueueStall += at - u.cycle
		u.cycle = at
	}
	out := make([]uint64, len(u.prog.OutputRegs))
	for i, r := range u.prog.OutputRegs {
		out[i] = u.readReg(r)
	}
	u.item.Emitted = append(u.item.Emitted, out)
	u.item.Instructions++
	u.item.CompCycles++
	u.cycle++
	u.pc++
	if err := u.advance(); err != nil {
		return nil, err
	}
	return out, nil
}

// advance executes instructions locally until the next yield point: a memory
// instruction (UnitWaitMem), an EMIT (UnitWaitEmit) or a HALT (UnitIdle,
// item finished). Computation touches no shared state, so the scheduler's
// global cycle ordering only needs to interleave the yield points.
func (u *Unit) advance() error {
	for {
		if u.item.Instructions >= maxInstructionsPerItem {
			return fmt.Errorf("widx: unit %q exceeded %d instructions on one item (cyclic node list?)",
				u.name, maxInstructionsPerItem)
		}
		if u.pc < 0 || u.pc >= len(u.prog.Code) {
			return fmt.Errorf("widx: unit %q ran off the end of its program (pc=%d)", u.name, u.pc)
		}
		in := u.prog.Code[u.pc]

		switch in.Op {
		case isa.HALT:
			// The 2-stage pipeline retires the halt in one cycle.
			u.item.Instructions++
			u.cycle++
			u.item.CompCycles++
			u.item.FinishCycle = u.cycle
			u.state = UnitIdle
			return nil

		case isa.EMIT:
			u.state = UnitWaitEmit
			return nil

		case isa.LD, isa.ST, isa.TOUCH:
			u.state = UnitWaitMem
			return nil

		case isa.BA:
			u.item.Instructions++
			u.cycle++
			u.item.CompCycles++
			u.pc = u.pc + 1 + int(in.Imm)

		case isa.BLE:
			u.item.Instructions++
			u.cycle++
			u.item.CompCycles++
			if int64(u.readReg(in.SrcA)) <= int64(u.readReg(in.SrcB)) {
				u.pc = u.pc + 1 + int(in.Imm)
			} else {
				u.pc++
			}

		default:
			// ALU operations: one cycle each on the 2-stage pipeline.
			a := u.readReg(in.SrcA)
			var b uint64
			if in.UseImm {
				b = uint64(in.Imm)
			} else {
				b = u.readReg(in.SrcB)
			}
			var v uint64
			switch in.Op {
			case isa.ADD:
				v = a + b
			case isa.AND:
				v = a & b
			case isa.XOR:
				v = a ^ b
			case isa.SHL:
				v = a << (b & 63)
			case isa.SHR:
				v = a >> (b & 63)
			case isa.CMP:
				if a == b {
					v = 1
				}
			case isa.CMPLE:
				if int64(a) <= int64(b) {
					v = 1
				}
			case isa.ADDSHF:
				v = a + shiftVal(b, in.Shift)
			case isa.ANDSHF:
				v = a & shiftVal(b, in.Shift)
			case isa.XORSHF:
				v = a ^ shiftVal(b, in.Shift)
			default:
				return fmt.Errorf("widx: unit %q hit unimplemented opcode %v", u.name, in.Op)
			}
			u.item.Instructions++
			u.writeReg(in.Dst, v)
			u.cycle++
			u.item.CompCycles++
			u.pc++
		}
	}
}

// RunItem executes one work item to completion, granting every yield
// immediately (no cross-unit interleaving, no queue backpressure). It is the
// single-unit convenience path used by unit tests and diagnostics; offloads
// go through the scheduler, which steps all units in global cycle order.
func (u *Unit) RunItem(inputs []uint64, startCycle uint64) (ItemResult, error) {
	if err := u.Start(inputs, startCycle); err != nil {
		return u.item, err
	}
	for u.state != UnitIdle {
		var err error
		switch u.state {
		case UnitWaitMem:
			err = u.GrantMem()
		case UnitWaitEmit:
			_, err = u.GrantEmit(u.cycle)
		}
		if err != nil {
			return u.item, err
		}
	}
	return u.item, nil
}
