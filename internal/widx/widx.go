package widx

import (
	"fmt"

	"widx/internal/isa"
	"widx/internal/mem"
	"widx/internal/vm"
)

// HashingMode selects which of the paper's design points (Figure 3) the
// accelerator uses. The default and the design the paper builds is
// SharedDispatcher; the other two exist for the ablation benchmarks.
type HashingMode uint8

const (
	// SharedDispatcher is Figure 3d / Figure 6: one decoupled hashing unit
	// (the dispatcher) feeds all walkers.
	SharedDispatcher HashingMode = iota
	// PerWalkerHash is Figure 3c: every walker has its own decoupled hashing
	// unit, so hashing of the next key overlaps that walker's current walk.
	PerWalkerHash
	// Coupled is Figure 3b: each walker hashes and then walks sequentially,
	// with no decoupling (hashing sits on the critical path).
	Coupled
)

// String names the mode.
func (m HashingMode) String() string {
	switch m {
	case SharedDispatcher:
		return "shared-dispatcher"
	case PerWalkerHash:
		return "per-walker-hash"
	case Coupled:
		return "coupled"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config selects the accelerator organization.
type Config struct {
	// NumWalkers is the number of walker units (the paper evaluates 1-4;
	// Section 3.2 shows >4 is not useful with practical L1/MSHR budgets).
	NumWalkers int
	// QueueDepth is the per-walker depth of the dispatch queue (2-entry
	// buffers in the paper's synthesized design).
	QueueDepth int
	// Mode selects the hashing organization (Figure 3 design points).
	Mode HashingMode
}

// DefaultConfig returns the paper's evaluated configuration: four walkers,
// 2-entry queues, a single shared decoupled dispatcher.
func DefaultConfig() Config {
	return Config{NumWalkers: 4, QueueDepth: 2, Mode: SharedDispatcher}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumWalkers <= 0 {
		return fmt.Errorf("widx: NumWalkers must be positive")
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("widx: QueueDepth must be positive")
	}
	if c.Mode > Coupled {
		return fmt.Errorf("widx: unknown hashing mode %d", c.Mode)
	}
	return nil
}

// Breakdown is the per-walker cycle accounting of Figures 8a, 9a and 9b.
type Breakdown struct {
	Comp uint64 // effective-address computation and key comparison
	Mem  uint64 // memory hierarchy stalls
	TLB  uint64 // address-translation stalls
	Idle uint64 // waiting for a hashed key from the dispatcher
}

// Total returns the sum of all categories.
func (b Breakdown) Total() uint64 { return b.Comp + b.Mem + b.TLB + b.Idle }

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Comp += o.Comp
	b.Mem += o.Mem
	b.TLB += o.TLB
	b.Idle += o.Idle
}

// addItem folds one work item's unit timing into the breakdown.
func (b *Breakdown) addItem(r ItemResult) {
	b.Comp += r.CompCycles
	b.Mem += r.MemCycles
	b.TLB += r.TLBCycles
}

// OffloadRequest describes one bulk indexing offload: the probe-side input
// key column and its extent. This mirrors the configuration registers the
// host core writes before signalling Widx to start (Section 4.3).
type OffloadRequest struct {
	// KeyBase is the virtual address of the first probe key.
	KeyBase uint64
	// KeyCount is the number of keys to probe.
	KeyCount uint64
	// KeyStride is the distance between consecutive keys in bytes
	// (8 for a dense 64-bit column; zero defaults to 8).
	KeyStride uint64
	// StartCycle is the cycle the offload begins at.
	StartCycle uint64
}

// OffloadResult reports one completed offload.
type OffloadResult struct {
	// Tuples is the number of probe keys processed.
	Tuples uint64
	// TotalCycles spans from the offload start to the last unit finishing.
	TotalCycles uint64
	// Matches holds every payload emitted by the walkers, in completion
	// order. For the indirect layout these are base-column references.
	Matches []uint64
	// Walkers holds the per-walker cycle breakdown; WalkerTotal aggregates it.
	Walkers     []Breakdown
	WalkerTotal Breakdown
	// Dispatcher reports the hashing unit's activity (shared mode) or the
	// sum over per-walker hashing units (other modes).
	DispatcherBusy  uint64
	DispatcherStall uint64 // cycles the dispatcher waited on full queues
	// Producer reports the output producer's busy cycles.
	ProducerBusy uint64
	// MemStats is the memory-system activity during the offload.
	MemStats mem.Stats
}

// CyclesPerTuple is the headline metric of Figures 8a and 9.
func (r OffloadResult) CyclesPerTuple() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.Tuples)
}

// WalkerUtilization returns the fraction of aggregate walker time not spent
// idle, the quantity modelled in Figure 5.
func (r OffloadResult) WalkerUtilization() float64 {
	total := r.WalkerTotal.Total()
	if total == 0 {
		return 0
	}
	return 1 - float64(r.WalkerTotal.Idle)/float64(total)
}

// Accelerator is a configured Widx instance bound to a host core's memory
// hierarchy and address space.
type Accelerator struct {
	cfg  Config
	hier *mem.Hierarchy
	as   *vm.AddressSpace

	dispProg *isa.Program
	walkProg *isa.Program
	prodProg *isa.Program
}

// New builds an accelerator from the three unit programs. The programs'
// queue interfaces must be compatible (dispatcher output arity == walker
// input arity, walker output arity == producer input arity).
func New(cfg Config, hier *mem.Hierarchy, as *vm.AddressSpace,
	dispatcher, walker, producer *isa.Program) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil || as == nil {
		return nil, fmt.Errorf("widx: accelerator needs a memory hierarchy and address space")
	}
	for _, check := range []struct {
		p    *isa.Program
		kind isa.UnitKind
	}{{dispatcher, isa.Dispatcher}, {walker, isa.Walker}, {producer, isa.Producer}} {
		if check.p == nil {
			return nil, fmt.Errorf("widx: missing %s program", check.kind)
		}
		if err := check.p.Validate(); err != nil {
			return nil, err
		}
		if check.p.Kind != check.kind {
			return nil, fmt.Errorf("widx: program %q is a %s, expected a %s",
				check.p.Name, check.p.Kind, check.kind)
		}
	}
	if len(dispatcher.OutputRegs) != len(walker.InputRegs) {
		return nil, fmt.Errorf("widx: dispatcher emits %d values but walker expects %d",
			len(dispatcher.OutputRegs), len(walker.InputRegs))
	}
	if len(walker.OutputRegs) != len(producer.InputRegs) {
		return nil, fmt.Errorf("widx: walker emits %d values but producer expects %d",
			len(walker.OutputRegs), len(producer.InputRegs))
	}
	return &Accelerator{
		cfg:      cfg,
		hier:     hier,
		as:       as,
		dispProg: dispatcher,
		walkProg: walker,
		prodProg: producer,
	}, nil
}

// NewFromControlBlock configures the accelerator the way hardware does: from
// the serialized control block the host core points it at. The block must
// contain exactly one dispatcher, one walker and one producer section.
func NewFromControlBlock(cfg Config, hier *mem.Hierarchy, as *vm.AddressSpace, cb *isa.ControlBlock) (*Accelerator, error) {
	progs, err := cb.Programs()
	if err != nil {
		return nil, err
	}
	var d, w, p *isa.Program
	for _, prog := range progs {
		switch prog.Kind {
		case isa.Dispatcher:
			d = prog
		case isa.Walker:
			w = prog
		case isa.Producer:
			p = prog
		}
	}
	return New(cfg, hier, as, d, w, p)
}

// Config returns the accelerator configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// Offload runs one bulk indexing operation to completion and returns its
// functional and timing results. The host core is assumed idle for the
// duration (full offload), which the energy model relies on.
func (a *Accelerator) Offload(req OffloadRequest) (*OffloadResult, error) {
	if req.KeyCount == 0 {
		return nil, fmt.Errorf("widx: offload with zero keys")
	}
	stride := req.KeyStride
	if stride == 0 {
		stride = 8
	}

	switch a.cfg.Mode {
	case SharedDispatcher:
		return a.offloadShared(req, stride)
	case PerWalkerHash, Coupled:
		return a.offloadPerWalker(req, stride)
	default:
		return nil, fmt.Errorf("widx: unknown mode %v", a.cfg.Mode)
	}
}

// offloadShared models the Figure 3d organization: a single dispatcher unit
// hashes keys in input order and deposits (bucket, key) pairs into a shared
// bounded queue; the earliest-free walker picks up each pair.
func (a *Accelerator) offloadShared(req OffloadRequest, stride uint64) (*OffloadResult, error) {
	n := a.cfg.NumWalkers
	queueCap := a.cfg.QueueDepth * n

	dispatcher, err := NewUnit("dispatcher", a.dispProg.Clone(), a.hier, a.as)
	if err != nil {
		return nil, err
	}
	producer, err := NewUnit("producer", a.prodProg.Clone(), a.hier, a.as)
	if err != nil {
		return nil, err
	}
	walkers := make([]*Unit, n)
	for i := range walkers {
		walkers[i], err = NewUnit(fmt.Sprintf("walker%d", i), a.walkProg.Clone(), a.hier, a.as)
		if err != nil {
			return nil, err
		}
	}

	res := &OffloadResult{Tuples: req.KeyCount, Walkers: make([]Breakdown, n)}
	memBefore := a.hier.Stats()

	dispTime := req.StartCycle
	prodTime := req.StartCycle
	walkerFree := make([]uint64, n)
	for i := range walkerFree {
		walkerFree[i] = req.StartCycle
	}
	// popTimes[i] records when item i left the dispatch queue; the dispatcher
	// may only be queueCap items ahead of the walkers.
	popTimes := make([]uint64, req.KeyCount)

	for i := uint64(0); i < req.KeyCount; i++ {
		keyAddr := req.KeyBase + i*stride

		slotReady := req.StartCycle
		if i >= uint64(queueCap) {
			slotReady = popTimes[i-uint64(queueCap)]
		}
		start := dispTime
		if slotReady > start {
			res.DispatcherStall += slotReady - start
			start = slotReady
		}
		dres, err := dispatcher.RunItem([]uint64{keyAddr}, start)
		if err != nil {
			return nil, err
		}
		dispTime = dres.FinishCycle
		res.DispatcherBusy += dres.Busy()
		if len(dres.Emitted) != 1 {
			return nil, fmt.Errorf("widx: dispatcher emitted %d items for one key", len(dres.Emitted))
		}
		item := dres.Emitted[0]
		available := dres.FinishCycle

		// Earliest-free walker takes the item.
		w := 0
		for j := 1; j < n; j++ {
			if walkerFree[j] < walkerFree[w] {
				w = j
			}
		}
		wStart := walkerFree[w]
		if available > wStart {
			res.Walkers[w].Idle += available - wStart
			wStart = available
		}
		popTimes[i] = wStart

		wres, err := walkers[w].RunItem(item, wStart)
		if err != nil {
			return nil, err
		}
		walkerFree[w] = wres.FinishCycle
		res.Walkers[w].addItem(wres)

		// Matches stream to the producer; its stores are off the critical
		// path but still consume time and bandwidth.
		for _, match := range wres.Emitted {
			pStart := prodTime
			if wres.FinishCycle > pStart {
				pStart = wres.FinishCycle
			}
			pres, err := producer.RunItem(match, pStart)
			if err != nil {
				return nil, err
			}
			prodTime = pres.FinishCycle
			res.ProducerBusy += pres.Busy()
			res.Matches = append(res.Matches, match[0])
		}
	}

	end := dispTime
	for _, f := range walkerFree {
		if f > end {
			end = f
		}
	}
	if prodTime > end {
		end = prodTime
	}
	res.TotalCycles = end - req.StartCycle
	for _, w := range res.Walkers {
		res.WalkerTotal.Add(w)
	}
	res.MemStats = diffStats(memBefore, a.hier.Stats())
	return res, nil
}

// offloadPerWalker models the Figure 3b and 3c organizations: keys are dealt
// round-robin to walkers. In PerWalkerHash mode each walker owns a hashing
// unit whose work overlaps the walker's previous walk (bounded by the queue
// depth); in Coupled mode hashing executes on the walker itself, serialized
// with the walk.
func (a *Accelerator) offloadPerWalker(req OffloadRequest, stride uint64) (*OffloadResult, error) {
	n := a.cfg.NumWalkers
	res := &OffloadResult{Tuples: req.KeyCount, Walkers: make([]Breakdown, n)}
	memBefore := a.hier.Stats()

	producer, err := NewUnit("producer", a.prodProg.Clone(), a.hier, a.as)
	if err != nil {
		return nil, err
	}
	prodTime := req.StartCycle

	type lane struct {
		hash  *Unit
		walk  *Unit
		hTime uint64
		wTime uint64
		// popTimes[k] is when the lane's k-th item left its queue (walk
		// start); the hashing unit may only run QueueDepth items ahead.
		popTimes []uint64
	}
	lanes := make([]*lane, n)
	for i := range lanes {
		h, err := NewUnit(fmt.Sprintf("hash%d", i), a.dispProg.Clone(), a.hier, a.as)
		if err != nil {
			return nil, err
		}
		w, err := NewUnit(fmt.Sprintf("walker%d", i), a.walkProg.Clone(), a.hier, a.as)
		if err != nil {
			return nil, err
		}
		lanes[i] = &lane{hash: h, walk: w, hTime: req.StartCycle, wTime: req.StartCycle}
	}

	end := req.StartCycle
	for i := uint64(0); i < req.KeyCount; i++ {
		keyAddr := req.KeyBase + i*stride
		l := lanes[i%uint64(n)]
		w := int(i % uint64(n))

		if a.cfg.Mode == Coupled {
			// Hash and walk back to back on the same unit timeline: hashing
			// sits on the critical path of every probe (Figure 3b).
			hres, err := l.hash.RunItem([]uint64{keyAddr}, l.wTime)
			if err != nil {
				return nil, err
			}
			res.DispatcherBusy += hres.Busy()
			res.Walkers[w].addItem(hres) // hashing occupies the walker itself
			if len(hres.Emitted) != 1 {
				return nil, fmt.Errorf("widx: hash unit emitted %d items", len(hres.Emitted))
			}
			wres, err := l.walk.RunItem(hres.Emitted[0], hres.FinishCycle)
			if err != nil {
				return nil, err
			}
			l.wTime = wres.FinishCycle
			res.Walkers[w].addItem(wres)
			prodTime = a.produce(producer, wres, prodTime, res)
			if l.wTime > end {
				end = l.wTime
			}
			continue
		}

		// PerWalkerHash (Figure 3c): the hashing unit runs ahead of its
		// walker, bounded by the queue depth.
		slotReady := req.StartCycle
		if k := len(l.popTimes); k >= a.cfg.QueueDepth {
			slotReady = l.popTimes[k-a.cfg.QueueDepth]
		}
		hStart := l.hTime
		if slotReady > hStart {
			res.DispatcherStall += slotReady - hStart
			hStart = slotReady
		}
		hres, err := l.hash.RunItem([]uint64{keyAddr}, hStart)
		if err != nil {
			return nil, err
		}
		l.hTime = hres.FinishCycle
		res.DispatcherBusy += hres.Busy()
		if len(hres.Emitted) != 1 {
			return nil, fmt.Errorf("widx: hash unit emitted %d items", len(hres.Emitted))
		}

		ready := hres.FinishCycle
		wStart := l.wTime
		if ready > wStart {
			res.Walkers[w].Idle += ready - wStart
			wStart = ready
		}
		l.popTimes = append(l.popTimes, wStart)
		wres, err := l.walk.RunItem(hres.Emitted[0], wStart)
		if err != nil {
			return nil, err
		}
		l.wTime = wres.FinishCycle
		res.Walkers[w].addItem(wres)
		prodTime = a.produce(producer, wres, prodTime, res)

		if l.wTime > end {
			end = l.wTime
		}
		if l.hTime > end {
			end = l.hTime
		}
	}

	if prodTime > end {
		end = prodTime
	}
	res.TotalCycles = end - req.StartCycle
	for _, w := range res.Walkers {
		res.WalkerTotal.Add(w)
	}
	res.MemStats = diffStats(memBefore, a.hier.Stats())
	return res, nil
}

// produce runs the producer for every match a walker emitted.
func (a *Accelerator) produce(producer *Unit, wres ItemResult, prodTime uint64, res *OffloadResult) uint64 {
	for _, match := range wres.Emitted {
		pStart := prodTime
		if wres.FinishCycle > pStart {
			pStart = wres.FinishCycle
		}
		pres, err := producer.RunItem(match, pStart)
		if err != nil {
			// The producer program is validated at construction; an error here
			// indicates a harness bug, so surface it loudly.
			panic(err)
		}
		prodTime = pres.FinishCycle
		res.ProducerBusy += pres.Busy()
		res.Matches = append(res.Matches, match[0])
	}
	return prodTime
}

// diffStats subtracts two cumulative Stats snapshots.
func diffStats(before, after mem.Stats) mem.Stats {
	return mem.Stats{
		Loads:           after.Loads - before.Loads,
		Stores:          after.Stores - before.Stores,
		Prefetches:      after.Prefetches - before.Prefetches,
		L1Hits:          after.L1Hits - before.L1Hits,
		L1Misses:        after.L1Misses - before.L1Misses,
		LLCHits:         after.LLCHits - before.LLCHits,
		LLCMisses:       after.LLCMisses - before.LLCMisses,
		CombinedMisses:  after.CombinedMisses - before.CombinedMisses,
		TLBMisses:       after.TLBMisses - before.TLBMisses,
		MemBlocks:       after.MemBlocks - before.MemBlocks,
		PortStallCycles: after.PortStallCycles - before.PortStallCycles,
		MSHRStallCycles: after.MSHRStallCycles - before.MSHRStallCycles,
	}
}
