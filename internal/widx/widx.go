package widx

import (
	"fmt"

	"widx/internal/isa"
	"widx/internal/mem"
	"widx/internal/system"
	"widx/internal/vm"
)

// HashingMode selects which of the paper's design points (Figure 3) the
// accelerator uses. The default and the design the paper builds is
// SharedDispatcher; the other two exist for the ablation benchmarks.
type HashingMode uint8

const (
	// SharedDispatcher is Figure 3d / Figure 6: one decoupled hashing unit
	// (the dispatcher) feeds all walkers.
	SharedDispatcher HashingMode = iota
	// PerWalkerHash is Figure 3c: every walker has its own decoupled hashing
	// unit, so hashing of the next key overlaps that walker's current walk.
	PerWalkerHash
	// Coupled is Figure 3b: each walker hashes and then walks sequentially,
	// with no decoupling (hashing sits on the critical path).
	Coupled
)

// String names the mode.
func (m HashingMode) String() string {
	switch m {
	case SharedDispatcher:
		return "shared-dispatcher"
	case PerWalkerHash:
		return "per-walker-hash"
	case Coupled:
		return "coupled"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Config selects the accelerator organization.
type Config struct {
	// NumWalkers is the number of walker units (the paper evaluates 1-4;
	// Section 3.2 shows >4 is not useful with practical L1/MSHR budgets).
	NumWalkers int
	// QueueDepth is the per-walker depth of the dispatch queue (2-entry
	// buffers in the paper's synthesized design).
	QueueDepth int
	// Mode selects the hashing organization (Figure 3 design points).
	Mode HashingMode
}

// DefaultConfig returns the paper's evaluated configuration: four walkers,
// 2-entry queues, a single shared decoupled dispatcher.
func DefaultConfig() Config {
	return Config{NumWalkers: 4, QueueDepth: 2, Mode: SharedDispatcher}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumWalkers <= 0 {
		return fmt.Errorf("widx: NumWalkers must be positive")
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("widx: QueueDepth must be positive")
	}
	if c.Mode > Coupled {
		return fmt.Errorf("widx: unknown hashing mode %d", c.Mode)
	}
	return nil
}

// Breakdown is the per-walker cycle accounting of Figures 8a, 9a and 9b.
type Breakdown struct {
	Comp uint64 // effective-address computation and key comparison
	Mem  uint64 // memory hierarchy stalls
	TLB  uint64 // address-translation stalls
	Idle uint64 // waiting for a hashed key from the dispatcher
}

// Total returns the sum of all categories.
func (b Breakdown) Total() uint64 { return b.Comp + b.Mem + b.TLB + b.Idle }

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Comp += o.Comp
	b.Mem += o.Mem
	b.TLB += o.TLB
	b.Idle += o.Idle
}

// addItem folds one work item's unit timing into the breakdown.
func (b *Breakdown) addItem(r ItemResult) {
	b.Comp += r.CompCycles
	b.Mem += r.MemCycles
	b.TLB += r.TLBCycles
}

// OffloadRequest describes one bulk indexing offload: the probe-side input
// key column and its extent. This mirrors the configuration registers the
// host core writes before signalling Widx to start (Section 4.3).
type OffloadRequest struct {
	// KeyBase is the virtual address of the first probe key.
	KeyBase uint64
	// KeyCount is the number of keys to probe.
	KeyCount uint64
	// KeyStride is the distance between consecutive keys in bytes
	// (8 for a dense 64-bit column; zero defaults to 8).
	KeyStride uint64
	// StartCycle is the cycle the offload begins at.
	StartCycle uint64
}

// OffloadResult reports one completed offload.
type OffloadResult struct {
	// Tuples is the number of probe keys processed.
	Tuples uint64
	// TotalCycles spans from the offload start to the last unit finishing.
	TotalCycles uint64
	// Matches holds every payload emitted by the walkers, in probe-key
	// order (matches of key i precede matches of key i+1; a key's matches
	// keep their walk emission order). The producer consumes the same
	// ordered stream, so the result region mirrors this slice. Key order
	// makes the functional output independent of how concurrent walks
	// interleave. For the indirect layout these are base-column references.
	Matches []uint64
	// Walkers holds the per-walker cycle breakdown; WalkerTotal aggregates it.
	Walkers     []Breakdown
	WalkerTotal Breakdown
	// Dispatcher reports the hashing unit's activity (shared mode) or the
	// sum over per-walker hashing units (other modes).
	DispatcherBusy  uint64
	DispatcherStall uint64 // cycles the dispatcher waited on full queues
	// Producer reports the output producer's busy cycles.
	ProducerBusy uint64
	// MemStats is the memory-system activity during the offload.
	MemStats mem.Stats
}

// CyclesPerTuple is the headline metric of Figures 8a and 9.
func (r OffloadResult) CyclesPerTuple() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.Tuples)
}

// WalkerUtilization returns the fraction of aggregate walker time not spent
// idle, the quantity modelled in Figure 5.
func (r OffloadResult) WalkerUtilization() float64 {
	total := r.WalkerTotal.Total()
	if total == 0 {
		return 0
	}
	return 1 - float64(r.WalkerTotal.Idle)/float64(total)
}

// Accelerator is a configured Widx instance bound to a host core's memory
// hierarchy and address space.
type Accelerator struct {
	cfg  Config
	hier *mem.Hierarchy
	as   *vm.AddressSpace

	dispProg *isa.Program
	walkProg *isa.Program
	prodProg *isa.Program
}

// New builds an accelerator from the three unit programs. The programs'
// queue interfaces must be compatible (dispatcher output arity == walker
// input arity, walker output arity == producer input arity).
func New(cfg Config, hier *mem.Hierarchy, as *vm.AddressSpace,
	dispatcher, walker, producer *isa.Program) (*Accelerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil || as == nil {
		return nil, fmt.Errorf("widx: accelerator needs a memory hierarchy and address space")
	}
	for _, check := range []struct {
		p    *isa.Program
		kind isa.UnitKind
	}{{dispatcher, isa.Dispatcher}, {walker, isa.Walker}, {producer, isa.Producer}} {
		if check.p == nil {
			return nil, fmt.Errorf("widx: missing %s program", check.kind)
		}
		if err := check.p.Validate(); err != nil {
			return nil, err
		}
		if check.p.Kind != check.kind {
			return nil, fmt.Errorf("widx: program %q is a %s, expected a %s",
				check.p.Name, check.p.Kind, check.kind)
		}
	}
	if len(dispatcher.OutputRegs) != len(walker.InputRegs) {
		return nil, fmt.Errorf("widx: dispatcher emits %d values but walker expects %d",
			len(dispatcher.OutputRegs), len(walker.InputRegs))
	}
	if len(walker.OutputRegs) != len(producer.InputRegs) {
		return nil, fmt.Errorf("widx: walker emits %d values but producer expects %d",
			len(walker.OutputRegs), len(producer.InputRegs))
	}
	return &Accelerator{
		cfg:      cfg,
		hier:     hier,
		as:       as,
		dispProg: dispatcher,
		walkProg: walker,
		prodProg: producer,
	}, nil
}

// NewFromControlBlock configures the accelerator the way hardware does: from
// the serialized control block the host core points it at. The block must
// contain exactly one dispatcher, one walker and one producer section.
func NewFromControlBlock(cfg Config, hier *mem.Hierarchy, as *vm.AddressSpace, cb *isa.ControlBlock) (*Accelerator, error) {
	progs, err := cb.Programs()
	if err != nil {
		return nil, err
	}
	var d, w, p *isa.Program
	for _, prog := range progs {
		switch prog.Kind {
		case isa.Dispatcher:
			d = prog
		case isa.Walker:
			w = prog
		case isa.Producer:
			p = prog
		}
	}
	return New(cfg, hier, as, d, w, p)
}

// Config returns the accelerator configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// OffloadAgent is an in-flight bulk indexing offload exposed as a resumable
// system.Agent: the system scheduler (internal/system) can co-schedule it
// with other agents — more Widx instances, host cores — against one shared
// memory level. Accelerator.Offload wraps it for the solo case.
type OffloadAgent struct {
	s         *sched
	memBefore mem.Stats
}

// StartOffload prepares one bulk indexing operation as a schedulable agent.
// The returned agent implements system.Agent; its Result becomes available
// once the agent reports Done.
func (a *Accelerator) StartOffload(req OffloadRequest) (*OffloadAgent, error) {
	if req.KeyCount == 0 {
		return nil, fmt.Errorf("widx: offload with zero keys")
	}
	stride := req.KeyStride
	if stride == 0 {
		stride = 8
	}
	if a.cfg.Mode > Coupled {
		return nil, fmt.Errorf("widx: unknown mode %v", a.cfg.Mode)
	}
	s, err := newSched(a, req, stride)
	if err != nil {
		return nil, err
	}
	return &OffloadAgent{s: s, memBefore: a.hier.Stats()}, nil
}

// Name identifies the agent (the label of its memory-hierarchy view).
func (o *OffloadAgent) Name() string { return o.s.Name() }

// Settle propagates all agent-local progress (computation and queue
// traffic); part of the system.Agent contract.
func (o *OffloadAgent) Settle() error { return o.s.Settle() }

// PendingMem reports the cycle of the earliest pending memory access.
func (o *OffloadAgent) PendingMem() (uint64, bool) { return o.s.PendingMem() }

// GrantMem performs the earliest pending memory access.
func (o *OffloadAgent) GrantMem() error { return o.s.GrantMem() }

// Done reports whether every key has been hashed, walked and produced.
func (o *OffloadAgent) Done() bool { return o.s.Done() }

// Result finalizes and returns the offload's functional and timing results.
// It is only valid once Done reports true. MemStats covers the agent's own
// hierarchy view over the offload's span, so in a multi-agent run it is the
// per-agent attribution of the shared level's activity.
func (o *OffloadAgent) Result() (*OffloadResult, error) {
	if !o.s.Done() {
		return nil, fmt.Errorf("widx: %s: result requested before the offload finished (%d/%d keys released)",
			o.s.Name(), o.s.nextOut, o.s.req.KeyCount)
	}
	res := o.s.res
	res.TotalCycles = o.s.endCycle() - o.s.req.StartCycle
	res.WalkerTotal = Breakdown{}
	for _, w := range res.Walkers {
		res.WalkerTotal.Add(w)
	}
	res.MemStats = o.s.acc.hier.Stats().Sub(o.memBefore)
	return res, nil
}

// Offload runs one bulk indexing operation to completion and returns its
// functional and timing results. The host core is assumed idle for the
// duration (full offload), which the energy model relies on.
//
// Execution happens on the cycle-interleaved core (sched.go) behind the
// system scheduler: every unit of the configured organization is stepped in
// global cycle order against the shared hierarchy, so accesses from
// concurrent walkers contend for L1 ports, MSHRs, page-walk slots and
// memory-controller bandwidth exactly as their cycle interleaving dictates.
// Errors from any unit — including the output producer — propagate to the
// caller. To co-run an offload with other agents on a shared memory level,
// use StartOffload and system.Run instead.
func (a *Accelerator) Offload(req OffloadRequest) (*OffloadResult, error) {
	o, err := a.StartOffload(req)
	if err != nil {
		return nil, err
	}
	if err := system.Run(o); err != nil {
		return nil, err
	}
	return o.Result()
}
