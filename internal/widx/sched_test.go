package widx

import (
	"testing"

	"widx/internal/hashidx"
	"widx/internal/mem"
)

// strictFixture builds the standard fixture with the monotonic-access
// assertion armed and an optional memory-config override.
func strictFixture(t *testing.T, layout hashidx.Layout, hash hashidx.HashKind,
	buildKeys, probeCount int, buckets uint64, memCfg mem.Config) *fixture {
	t.Helper()
	f := newFixture(t, layout, hash, buildKeys, probeCount, buckets)
	f.hier = mem.NewHierarchy(memCfg)
	f.hier.SetStrictOrder(true)
	return f
}

// TestOffloadStrictMemOrder is the acceptance assertion of the stepped core:
// in every hashing organization and at every walker count, all memory
// accesses reach the hierarchy in monotonically non-decreasing cycle order
// (the strict hierarchy panics otherwise).
func TestOffloadStrictMemOrder(t *testing.T) {
	for _, mode := range []HashingMode{SharedDispatcher, PerWalkerHash, Coupled} {
		for _, walkers := range []int{1, 3, 4, 8} {
			f := strictFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 4000, 600, 1<<11, mem.DefaultConfig())
			acc := f.accelerator(t, Config{NumWalkers: walkers, QueueDepth: 2, Mode: mode})
			res := f.offload(t, acc)
			if res.TotalCycles == 0 {
				t.Fatalf("%v/w%d: no cycles elapsed", mode, walkers)
			}
		}
	}
}

// TestWalkerScalingSaturatesAtMSHRBudget reproduces the Section 3.2 effect
// the stepped core exists to capture: on a memory-resident index, walker
// scaling is strong up to the shared L1 MSHR budget and marginal beyond it,
// because the walkers' concurrent misses exhaust the miss-handling slots.
func TestWalkerScalingSaturatesAtMSHRBudget(t *testing.T) {
	memCfg := mem.DefaultConfig()
	memCfg.L1MSHRs = 5 // a budget the 1-8 walker sweep crosses

	cpt := map[int]float64{}
	sat := map[int]float64{}
	stall := map[int]uint64{}
	for _, n := range []int{1, 2, 4, 8} {
		f := strictFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 60000, 2500, 1<<16, memCfg)
		acc := f.accelerator(t, Config{NumWalkers: n, QueueDepth: 2})
		res := f.offload(t, acc)
		cpt[n] = res.CyclesPerTuple()
		sat[n] = res.MemStats.MSHRSaturationShare(memCfg.L1MSHRs)
		stall[n] = res.MemStats.MSHRStallCycles
		t.Logf("walkers=%d cpt=%.1f mshr-full-share=%.2f mshr-stall=%d",
			n, cpt[n], sat[n], stall[n])
	}
	t.Logf("gain 1->4 = %.2f, gain 4->8 = %.2f", cpt[1]/cpt[4], cpt[4]/cpt[8])

	// Below the MSHR budget, walkers scale nearly linearly.
	if !(cpt[1] > cpt[2] && cpt[2] > cpt[4]) {
		t.Fatalf("cycles per tuple should fall through 4 walkers: %v", cpt)
	}
	if gain := cpt[1] / cpt[4]; gain < 3.0 {
		t.Fatalf("1->4 walker gain = %.2fx, expected near-linear scaling below the MSHR budget", gain)
	}
	// Beyond the budget the gain is marginal: eight walkers cannot sustain
	// more misses than five MSHRs allow.
	if gain := cpt[4] / cpt[8]; gain > 1.4 {
		t.Fatalf("4->8 walker gain = %.2fx, expected marginal improvement once MSHRs saturate", gain)
	}
	// The histogram explains why: one walker never fills the budget, eight
	// walkers keep it full most of the time and stall on allocation.
	if sat[1] > 0.05 {
		t.Fatalf("1 walker should not saturate the MSHRs (share %.2f)", sat[1])
	}
	if sat[8] < 0.5 {
		t.Fatalf("8 walkers should keep the MSHRs saturated (share %.2f)", sat[8])
	}
	if stall[8] <= stall[4] {
		t.Fatalf("MSHR allocation stalls should grow past the budget: w4=%d w8=%d", stall[4], stall[8])
	}
}

// TestOffloadDeterministic runs the same offload twice on identically built
// fixtures and requires bit-identical functional and timing results: the
// scheduler has no hidden state, map-order dependence or RNG.
func TestOffloadDeterministic(t *testing.T) {
	for _, mode := range []HashingMode{SharedDispatcher, PerWalkerHash, Coupled} {
		run := func() *OffloadResult {
			f := strictFixture(t, hashidx.LayoutIndirect, hashidx.HashRobust, 4000, 800, 1<<11, mem.DefaultConfig())
			acc := f.accelerator(t, Config{NumWalkers: 4, QueueDepth: 2, Mode: mode})
			return f.offload(t, acc)
		}
		a, b := run(), run()
		if a.TotalCycles != b.TotalCycles {
			t.Fatalf("%v: total cycles differ: %d vs %d", mode, a.TotalCycles, b.TotalCycles)
		}
		if len(a.Matches) != len(b.Matches) {
			t.Fatalf("%v: match counts differ", mode)
		}
		for i := range a.Matches {
			if a.Matches[i] != b.Matches[i] {
				t.Fatalf("%v: match %d differs: %#x vs %#x", mode, i, a.Matches[i], b.Matches[i])
			}
		}
		if a.WalkerTotal != b.WalkerTotal || a.DispatcherBusy != b.DispatcherBusy ||
			a.DispatcherStall != b.DispatcherStall || a.ProducerBusy != b.ProducerBusy {
			t.Fatalf("%v: unit accounting differs:\n%+v\n%+v", mode, a, b)
		}
	}
}

// TestOffloadPropagatesUnitErrors replaces the seed model's panic-on-producer
// -error: any unit fault mid-offload (here a corrupted, cyclic node list that
// trips the walker's instruction bound) surfaces as an error from Offload.
func TestOffloadPropagatesUnitErrors(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 64, 16, 64)
	// Corrupt the bucket the first probe key walks so its next pointer
	// points at itself.
	idx := hashidx.BucketIndex(hashidx.HashOf(hashidx.HashSimple, f.probeKeys[0]), f.table.Buckets())
	b := f.table.BucketAddr(idx)
	f.as.Write64(b+hashidx.InlineNextOffset, b)
	acc := f.accelerator(t, DefaultConfig())
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Offload panicked instead of returning an error: %v", r)
		}
	}()
	if _, err := acc.Offload(OffloadRequest{KeyBase: f.keyBase, KeyCount: uint64(len(f.probeKeys))}); err == nil {
		t.Fatal("offload over a cyclic node list should fail")
	}
}

// TestMSHROccupancyHistogram sanity-checks the new live-occupancy tracking:
// the histogram covers the bulk of the offload and shifts toward higher
// occupancy levels as walkers are added.
func TestMSHROccupancyHistogram(t *testing.T) {
	weighted := func(hist []uint64) (cycles uint64, mean float64) {
		var sum, w uint64
		for k, c := range hist {
			sum += c
			w += uint64(k) * c
		}
		if sum == 0 {
			return 0, 0
		}
		return sum, float64(w) / float64(sum)
	}
	means := map[int]float64{}
	for _, n := range []int{1, 4} {
		f := strictFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 60000, 2000, 1<<16, mem.DefaultConfig())
		acc := f.accelerator(t, Config{NumWalkers: n, QueueDepth: 2})
		res := f.offload(t, acc)
		cycles, mean := weighted(res.MemStats.MSHROccupancy)
		t.Logf("walkers=%d histogram-cycles=%d (total %d) mean-occupancy=%.2f", n, cycles, res.TotalCycles, mean)
		if cycles == 0 {
			t.Fatalf("walkers=%d: empty MSHR occupancy histogram", n)
		}
		if cycles > res.TotalCycles {
			t.Fatalf("walkers=%d: histogram covers %d cycles, more than the offload's %d", n, cycles, res.TotalCycles)
		}
		means[n] = mean
	}
	if means[4] <= means[1] {
		t.Fatalf("mean MSHR occupancy should grow with walkers: %v", means)
	}
}

// TestTwoTierMSHRKneeWithIdleFillBuffers is the two-tier saturation
// acceptance test: a 5-MSHR *per-agent* budget in front of a generous
// 20-entry shared fill-buffer pool reproduces the Section 3.2 walker-scaling
// knee cycle-for-cycle (for a lone agent the private gate is the binding
// constraint, exactly like the historical 5-entry single pool), while the
// shared pool stays under-subscribed: no fill-buffer stalls, and the shared
// occupancy never exceeds what 5 private MSHRs can offer.
func TestTwoTierMSHRKneeWithIdleFillBuffers(t *testing.T) {
	singlePool := mem.DefaultConfig()
	singlePool.L1MSHRs = 5

	twoTier := mem.DefaultConfig().Topology()
	twoTier.Shared.FillBuffers = 20
	agentSpec := twoTier.Agent("widx")
	agentSpec.MSHRs = 5

	cpt := map[int]float64{}
	for _, n := range []int{1, 4, 8} {
		// Reference: the flat 5-MSHR machine (both tiers at 5).
		f := strictFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 60000, 2500, 1<<16, singlePool)
		acc := f.accelerator(t, Config{NumWalkers: n, QueueDepth: 2})
		ref := f.offload(t, acc)

		// The two-tier machine: 5 private MSHRs, 20 shared fill buffers.
		f2 := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 60000, 2500, 1<<16)
		sl := mem.NewSharedLevel(twoTier)
		sl.SetStrictOrder(true)
		f2.hier = sl.NewAgent(agentSpec)
		acc2 := f2.accelerator(t, Config{NumWalkers: n, QueueDepth: 2})
		res := f2.offload(t, acc2)

		if res.TotalCycles != ref.TotalCycles {
			t.Fatalf("w%d: a lone agent gated by 5 private MSHRs must time exactly like the 5-entry single pool: %d vs %d",
				n, res.TotalCycles, ref.TotalCycles)
		}
		cpt[n] = res.CyclesPerTuple()
		ms := res.MemStats
		if ms.FillStallCycles != 0 {
			t.Fatalf("w%d: the 20-entry fill-buffer pool stalled a 5-MSHR agent (%d cycles)", n, ms.FillStallCycles)
		}
		shared := sl.Stats()
		if sat := shared.MSHRSaturationShare(6); sat != 0 {
			t.Fatalf("w%d: shared pool occupancy exceeded the 5-MSHR private offer (share at >=6: %.3f)", n, sat)
		}
		t.Logf("walkers=%d cpt=%.1f private-full=%.2f shared-mean-occ=%.2f",
			n, cpt[n], ms.MSHRSaturationShare(5), shared.MeanMSHROccupancy())
	}
	// The knee: near-linear to 4 walkers, marginal beyond — purely from the
	// per-agent tier.
	if gain := cpt[1] / cpt[4]; gain < 3.0 {
		t.Fatalf("1->4 walker gain = %.2fx, want near-linear below the private budget", gain)
	}
	if gain := cpt[4] / cpt[8]; gain > 1.4 {
		t.Fatalf("4->8 walker gain = %.2fx, want marginal once the private MSHRs saturate", gain)
	}
}
