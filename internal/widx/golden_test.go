package widx

import (
	"fmt"
	"hash/fnv"
	"testing"

	"widx/internal/hashidx"
)

// matchFingerprint hashes the exact match stream (values and order) so tests
// can assert byte-identity of the functional output across model refactors.
func matchFingerprint(matches []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, m := range matches {
		for i := range buf {
			buf[i] = byte(m >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// seedGoldens records the match-stream fingerprints produced by the original
// run-to-completion seed model (PR 1) for a fixed fixture matrix. The stepped
// scheduler must reproduce every one byte-for-byte: the matches a probe
// stream yields are a functional property of the index and the programs, and
// must not depend on the timing model, the hashing organization or the
// walker count.
var seedGoldens = map[string]uint64{
	"inline/simple/shared-dispatcher/w1":   0x60b0bd3aa5852aef,
	"inline/simple/shared-dispatcher/w4":   0x60b0bd3aa5852aef,
	"inline/simple/per-walker-hash/w4":     0x60b0bd3aa5852aef,
	"inline/simple/coupled/w4":             0x60b0bd3aa5852aef,
	"inline/robust/shared-dispatcher/w1":   0x60b0bd3aa5852aef,
	"inline/robust/shared-dispatcher/w4":   0x60b0bd3aa5852aef,
	"inline/robust/per-walker-hash/w4":     0x60b0bd3aa5852aef,
	"inline/robust/coupled/w4":             0x60b0bd3aa5852aef,
	"indirect/simple/shared-dispatcher/w1": 0xd8f538050f12205e,
	"indirect/simple/shared-dispatcher/w4": 0xd8f538050f12205e,
	"indirect/simple/per-walker-hash/w4":   0xd8f538050f12205e,
	"indirect/simple/coupled/w4":           0xd8f538050f12205e,
	"indirect/robust/shared-dispatcher/w1": 0xd8f538050f12205e,
	"indirect/robust/shared-dispatcher/w4": 0xd8f538050f12205e,
	"indirect/robust/per-walker-hash/w4":   0xd8f538050f12205e,
	"indirect/robust/coupled/w4":           0xd8f538050f12205e,
}

type goldenPoint struct {
	layout  hashidx.Layout
	hash    hashidx.HashKind
	mode    HashingMode
	walkers int
}

func goldenMatrix() []goldenPoint {
	var pts []goldenPoint
	for _, layout := range []hashidx.Layout{hashidx.LayoutInline, hashidx.LayoutIndirect} {
		for _, hash := range []hashidx.HashKind{hashidx.HashSimple, hashidx.HashRobust} {
			pts = append(pts,
				goldenPoint{layout, hash, SharedDispatcher, 1},
				goldenPoint{layout, hash, SharedDispatcher, 4},
				goldenPoint{layout, hash, PerWalkerHash, 4},
				goldenPoint{layout, hash, Coupled, 4},
			)
		}
	}
	return pts
}

func goldenKey(p goldenPoint) string {
	layout := "inline"
	if p.layout == hashidx.LayoutIndirect {
		layout = "indirect"
	}
	hash := "simple"
	if p.hash == hashidx.HashRobust {
		hash = "robust"
	}
	return fmt.Sprintf("%s/%s/%v/w%d", layout, hash, p.mode, p.walkers)
}

// TestMatchesByteIdenticalToSeedModel asserts the refactor contract: the
// match stream of every design point is byte-identical to what the seed model
// emitted. The logged GOLDEN lines regenerate the table after an intentional
// functional change.
func TestMatchesByteIdenticalToSeedModel(t *testing.T) {
	for _, p := range goldenMatrix() {
		key := goldenKey(p)
		f := newFixture(t, p.layout, p.hash, 500, 300, 256)
		acc := f.accelerator(t, Config{NumWalkers: p.walkers, QueueDepth: 2, Mode: p.mode})
		res := f.offload(t, acc)
		got := matchFingerprint(res.Matches)
		t.Logf("GOLDEN %q: %#x (matches=%d)", key, got, len(res.Matches))
		want, ok := seedGoldens[key]
		if !ok {
			t.Fatalf("no golden recorded for %q", key)
		}
		if got != want {
			t.Errorf("%s: match stream fingerprint %#x, want seed-model %#x", key, got, want)
		}
	}
}
