package widx

import (
	"sort"
	"testing"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/stats"
	"widx/internal/vm"
)

// fixture builds an address space, a hash index, an input key column with
// both hits and misses, a result region and the program bundle for them.
type fixture struct {
	as         *vm.AddressSpace
	hier       *mem.Hierarchy
	table      *hashidx.Table
	bundle     *program.Bundle
	keyBase    uint64
	probeKeys  []uint64
	resultBase uint64
}

func newFixture(t testing.TB, layout hashidx.Layout, hash hashidx.HashKind, buildKeys, probeCount int, buckets uint64) *fixture {
	t.Helper()
	as := vm.New()
	rng := stats.NewRNG(99)

	keys := make([]uint64, buildKeys)
	seen := map[uint64]bool{}
	for i := range keys {
		for {
			k := rng.Uint64()>>1 + 1
			if !seen[k] {
				keys[i] = k
				seen[k] = true
				break
			}
		}
	}
	tbl, err := hashidx.Build(as, hashidx.Config{Layout: layout, Hash: hash, BucketCount: buckets, Name: "fix"}, keys, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Probe stream: a mix of present and absent keys.
	probes := make([]uint64, probeCount)
	for i := range probes {
		if i%3 == 2 {
			probes[i] = rng.Uint64()>>1 + 1 // likely absent
		} else {
			probes[i] = keys[rng.Intn(len(keys))]
		}
	}
	keyBase := as.AllocAligned("probe.keys", uint64(len(probes))*8)
	for i, k := range probes {
		as.Write64(keyBase+uint64(i)*8, k)
	}
	resultBase := as.AllocAligned("probe.results", uint64(len(probes))*16+64)

	bundle, err := program.ForTable(tbl, resultBase)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		as:         as,
		hier:       mem.NewHierarchy(mem.DefaultConfig()),
		table:      tbl,
		bundle:     bundle,
		keyBase:    keyBase,
		probeKeys:  probes,
		resultBase: resultBase,
	}
}

// expectedMatches returns the multiset of payloads the software index finds
// for the probe stream, normalized so the indirect layout's references are
// comparable with the walker's emitted references.
func (f *fixture) expectedMatches() []uint64 {
	var out []uint64
	for _, k := range f.probeKeys {
		r := f.table.Probe(k)
		if !r.Found {
			continue
		}
		for i := 0; i < r.Matches; i++ {
			if f.table.Config().Layout == hashidx.LayoutIndirect {
				// Walkers emit the base-column reference; convert the row id.
				out = append(out, f.table.KeyColumnBase()+r.Payload*8)
			} else {
				out = append(out, r.Payload)
			}
		}
	}
	return out
}

func (f *fixture) accelerator(t testing.TB, cfg Config) *Accelerator {
	t.Helper()
	acc, err := New(cfg, f.hier, f.as, f.bundle.Dispatcher, f.bundle.Walker, f.bundle.Producer)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func (f *fixture) offload(t testing.TB, acc *Accelerator) *OffloadResult {
	t.Helper()
	res, err := acc.Offload(OffloadRequest{KeyBase: f.keyBase, KeyCount: uint64(len(f.probeKeys))})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestUnitExecutesDispatcherCorrectly(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 64, 8, 64)
	u, err := NewUnit("d", f.bundle.Dispatcher, f.hier, f.as)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range f.probeKeys {
		res, err := u.RunItem([]uint64{f.keyBase + uint64(i)*8}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Emitted) != 1 {
			t.Fatalf("dispatcher emitted %d items", len(res.Emitted))
		}
		gotBucket, gotKey := res.Emitted[0][0], res.Emitted[0][1]
		if gotKey != key {
			t.Fatalf("dispatcher loaded key %#x, want %#x", gotKey, key)
		}
		wantBucket := f.table.BucketAddr(hashidx.BucketIndex(hashidx.RobustHash(key), f.table.Buckets()))
		if gotBucket != wantBucket {
			t.Fatalf("dispatcher bucket %#x, want %#x (hash lowering mismatch)", gotBucket, wantBucket)
		}
		if res.CompCycles == 0 || res.MemOps != 1 {
			t.Fatalf("dispatcher timing wrong: %+v", res)
		}
	}
}

func TestUnitRejectsBadInput(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 16, 4, 16)
	u, err := NewUnit("w", f.bundle.Walker, f.hier, f.as)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.RunItem([]uint64{1}, 0); err == nil {
		t.Fatal("walker accepted too few inputs")
	}
	if _, err := NewUnit("x", nil, f.hier, f.as); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := NewUnit("x", f.bundle.Walker, nil, nil); err == nil {
		t.Fatal("nil hierarchy accepted")
	}
}

func TestUnitDetectsCyclicChains(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 4, 2, 4)
	// Corrupt a bucket so its next pointer points at itself.
	b := f.table.BucketAddr(0)
	f.as.Write64(b+hashidx.InlineNextOffset, b)
	u, err := NewUnit("w", f.bundle.Walker, f.hier, f.as)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.RunItem([]uint64{b, 12345}, 0); err == nil {
		t.Fatal("cyclic node list did not fail")
	}
}

func TestUnitRegisterConventions(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 16, 4, 16)
	u, err := NewUnit("p", f.bundle.Producer, f.hier, f.as)
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind() != isa.Producer || u.Name() != "p" || u.Program() == nil {
		t.Fatal("unit metadata wrong")
	}
	// The producer's cursor advances by 8 per item and persists across items.
	start := u.Reg(program.RegCursor)
	if start != f.resultBase {
		t.Fatalf("cursor preload = %#x, want %#x", start, f.resultBase)
	}
	for i := uint64(0); i < 3; i++ {
		if _, err := u.RunItem([]uint64{0xAA00 + i}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := u.Reg(program.RegCursor); got != start+24 {
		t.Fatalf("cursor after 3 items = %#x, want %#x", got, start+24)
	}
	// Values actually landed in the result region.
	for i := uint64(0); i < 3; i++ {
		if got := f.as.Read64(f.resultBase + i*8); got != 0xAA00+i {
			t.Fatalf("result[%d] = %#x", i, got)
		}
	}
	// Reset restores the configured cursor.
	u.Reset()
	if u.Reg(program.RegCursor) != f.resultBase {
		t.Fatal("Reset did not restore constants")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{NumWalkers: 0, QueueDepth: 2},
		{NumWalkers: 2, QueueDepth: 0},
		{NumWalkers: 2, QueueDepth: 2, Mode: HashingMode(9)},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
	if SharedDispatcher.String() == "" || PerWalkerHash.String() == "" || Coupled.String() == "" ||
		HashingMode(9).String() == "" {
		t.Fatal("mode names missing")
	}
}

func TestNewRejectsMismatchedPrograms(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 16, 4, 16)
	cfg := DefaultConfig()
	if _, err := New(cfg, f.hier, f.as, nil, f.bundle.Walker, f.bundle.Producer); err == nil {
		t.Fatal("nil dispatcher accepted")
	}
	if _, err := New(cfg, f.hier, f.as, f.bundle.Walker, f.bundle.Walker, f.bundle.Producer); err == nil {
		t.Fatal("walker program accepted as dispatcher")
	}
	if _, err := New(cfg, nil, f.as, f.bundle.Dispatcher, f.bundle.Walker, f.bundle.Producer); err == nil {
		t.Fatal("nil hierarchy accepted")
	}
	if _, err := New(Config{NumWalkers: -1, QueueDepth: 2}, f.hier, f.as,
		f.bundle.Dispatcher, f.bundle.Walker, f.bundle.Producer); err == nil {
		t.Fatal("invalid config accepted")
	}
	// Arity mismatch: producer that expects two inputs.
	badProducer := f.bundle.Producer.Clone()
	badProducer.InputRegs = []isa.Reg{1, 2}
	if _, err := New(cfg, f.hier, f.as, f.bundle.Dispatcher, f.bundle.Walker, badProducer); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestOffloadFunctionalEquivalence(t *testing.T) {
	for _, layout := range []hashidx.Layout{hashidx.LayoutInline, hashidx.LayoutIndirect} {
		for _, hash := range []hashidx.HashKind{hashidx.HashSimple, hashidx.HashRobust} {
			for _, mode := range []HashingMode{SharedDispatcher, PerWalkerHash, Coupled} {
				f := newFixture(t, layout, hash, 500, 300, 256)
				acc := f.accelerator(t, Config{NumWalkers: 4, QueueDepth: 2, Mode: mode})
				res := f.offload(t, acc)

				want := sortedCopy(f.expectedMatches())
				got := sortedCopy(res.Matches)
				if len(want) != len(got) {
					t.Fatalf("%v/%v/%v: match count %d, want %d", layout, hash, mode, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%v/%v/%v: match %d = %#x, want %#x", layout, hash, mode, i, got[i], want[i])
					}
				}
				if res.Tuples != uint64(len(f.probeKeys)) {
					t.Fatalf("tuples = %d", res.Tuples)
				}
				if res.TotalCycles == 0 || res.CyclesPerTuple() <= 0 {
					t.Fatalf("no time elapsed: %+v", res)
				}
			}
		}
	}
}

func TestOffloadFromControlBlock(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 200, 100, 128)
	cb, err := f.bundle.ControlBlock()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := NewFromControlBlock(Config{NumWalkers: 2, QueueDepth: 2}, f.hier, f.as, cb)
	if err != nil {
		t.Fatal(err)
	}
	res := f.offload(t, acc)
	want := sortedCopy(f.expectedMatches())
	got := sortedCopy(res.Matches)
	if len(want) != len(got) {
		t.Fatalf("control-block offload matches %d, want %d", len(got), len(want))
	}
}

func TestProducerWritesResultsToMemory(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 300, 200, 128)
	acc := f.accelerator(t, Config{NumWalkers: 2, QueueDepth: 2})
	res := f.offload(t, acc)
	if len(res.Matches) == 0 {
		t.Fatal("no matches produced")
	}
	// Every match must have been stored, in order, at the result region.
	for i, m := range res.Matches {
		if got := f.as.Read64(f.resultBase + uint64(i)*8); got != m {
			t.Fatalf("result[%d] = %#x, want %#x", i, got, m)
		}
	}
}

func TestMoreWalkersReduceCycles(t *testing.T) {
	// A memory-resident index with enough probes: walker scaling should cut
	// cycles per tuple substantially (Figures 8 and 10).
	cpts := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 20000, 3000, 1<<15)
		acc := f.accelerator(t, Config{NumWalkers: n, QueueDepth: 2})
		res := f.offload(t, acc)
		cpts[n] = res.CyclesPerTuple()
	}
	if !(cpts[1] > cpts[2] && cpts[2] > cpts[4]) {
		t.Fatalf("cycles per tuple did not scale with walkers: %v", cpts)
	}
	if cpts[1]/cpts[4] < 1.8 {
		t.Fatalf("4 walkers should be well under half the cycles of 1 walker: %v", cpts)
	}
}

func TestDecouplingBeatsCoupledHashing(t *testing.T) {
	// With a robust (expensive) hash, decoupled hashing should beat the
	// coupled design (Section 3.1's 29% claim; we only require an improvement).
	var coupled, decoupled float64
	{
		f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 20000, 2000, 1<<15)
		acc := f.accelerator(t, Config{NumWalkers: 2, QueueDepth: 2, Mode: Coupled})
		coupled = f.offload(t, acc).CyclesPerTuple()
	}
	{
		f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 20000, 2000, 1<<15)
		acc := f.accelerator(t, Config{NumWalkers: 2, QueueDepth: 2, Mode: PerWalkerHash})
		decoupled = f.offload(t, acc).CyclesPerTuple()
	}
	if decoupled >= coupled {
		t.Fatalf("decoupled hashing (%v cpt) should beat coupled (%v cpt)", decoupled, coupled)
	}
}

func TestSmallIndexShowsWalkerIdle(t *testing.T) {
	// An L1-resident index with many walkers: walks are so fast that one
	// dispatcher cannot keep up, so idle cycles must appear (Figure 8a Small,
	// TPC-DS queries in Figure 9b).
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 256, 4000, 256)
	acc := f.accelerator(t, Config{NumWalkers: 4, QueueDepth: 2})
	res := f.offload(t, acc)
	if res.WalkerTotal.Idle == 0 {
		t.Fatal("expected idle walker cycles on an L1-resident index with 4 walkers")
	}
	if res.WalkerUtilization() >= 1 {
		t.Fatalf("utilization should be below 1: %v", res.WalkerUtilization())
	}
}

func TestLargeIndexIsMemoryBound(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 60000, 2000, 1<<16)
	acc := f.accelerator(t, Config{NumWalkers: 4, QueueDepth: 2})
	res := f.offload(t, acc)
	b := res.WalkerTotal
	if b.Mem <= b.Comp {
		t.Fatalf("memory-resident index should be memory bound: %+v", b)
	}
	if res.MemStats.LLCMisses == 0 {
		t.Fatal("expected LLC misses on a large index")
	}
}

func TestOffloadRequestValidation(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 16, 4, 16)
	acc := f.accelerator(t, DefaultConfig())
	if _, err := acc.Offload(OffloadRequest{KeyBase: f.keyBase, KeyCount: 0}); err == nil {
		t.Fatal("zero-key offload accepted")
	}
	if acc.Config().NumWalkers != 4 {
		t.Fatal("config accessor wrong")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{Comp: 1, Mem: 2, TLB: 3, Idle: 4})
	b.Add(Breakdown{Comp: 10, Mem: 20, TLB: 30, Idle: 40})
	if b.Total() != 110 {
		t.Fatalf("Total = %d", b.Total())
	}
	var r OffloadResult
	if r.CyclesPerTuple() != 0 || r.WalkerUtilization() != 0 {
		t.Fatal("zero-value result should report zero metrics")
	}
}
