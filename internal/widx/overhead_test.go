package widx

import (
	"fmt"
	"testing"
	"time"

	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/system"
)

// The benchmark-smoke guard for the stepped execution core. The scheduler's
// wall-clock overhead is measured *relative* to the same probe stream
// executed through the unscheduled RunItem path (run-to-completion per work
// item, the seed model's execution style), in the same process. Both sides
// interpret the same programs against the same kind of hierarchy, so the
// ratio isolates what the scheduler adds and is independent of how fast the
// CI runner happens to be.
const (
	// maxSchedulerOverheadRatio fails the guard when the stepped offload
	// takes more than this multiple of the unscheduled baseline. At
	// introduction the ratio measured ~1.6x; the limit sits at roughly
	// twice that, so a change that doubles scheduler overhead fails.
	maxSchedulerOverheadRatio = 3.0
	// minKeysPerSec is a sanity floor (absolute) that catches gross
	// regressions affecting both paths equally, far below the ~370k keys/s
	// measured on a slow single-CPU container.
	minKeysPerSec = 40_000
)

// guardWorkload builds the fixed guard fixture (memory-resident index).
func guardWorkload(tb testing.TB) *fixture {
	tb.Helper()
	return newFixture(tb, hashidx.LayoutInline, hashidx.HashRobust, 60000, 4000, 1<<16)
}

// steppedRun executes the guard workload on the scheduled core and returns
// the wall-clock of the offload.
func steppedRun(tb testing.TB, f *fixture) time.Duration {
	tb.Helper()
	hier := mem.NewHierarchy(mem.DefaultConfig())
	acc, err := New(Config{NumWalkers: 4, QueueDepth: 2}, hier, f.as,
		f.bundle.Dispatcher, f.bundle.Walker, f.bundle.Producer)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	if _, err := acc.Offload(OffloadRequest{KeyBase: f.keyBase, KeyCount: uint64(len(f.probeKeys))}); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// baselineRun executes the same probe stream through RunItem (no scheduler,
// no queues: dispatcher, one walker and the producer run each item to
// completion back to back) and returns its wall-clock.
func baselineRun(tb testing.TB, f *fixture) time.Duration {
	tb.Helper()
	hier := mem.NewHierarchy(mem.DefaultConfig())
	d, err := NewUnit("d", f.bundle.Dispatcher.Clone(), hier, f.as)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := NewUnit("w", f.bundle.Walker.Clone(), hier, f.as)
	if err != nil {
		tb.Fatal(err)
	}
	p, err := NewUnit("p", f.bundle.Producer.Clone(), hier, f.as)
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	cycle := uint64(0)
	for i := range f.probeKeys {
		dres, err := d.RunItem([]uint64{f.keyBase + uint64(i)*8}, cycle)
		if err != nil {
			tb.Fatal(err)
		}
		wres, err := w.RunItem(dres.Emitted[0], dres.FinishCycle)
		if err != nil {
			tb.Fatal(err)
		}
		for _, m := range wres.Emitted {
			if _, err := p.RunItem(m, wres.FinishCycle); err != nil {
				tb.Fatal(err)
			}
		}
		cycle = dres.FinishCycle
	}
	return time.Since(start)
}

// TestSchedulerOverheadBudget is the benchmark-smoke guard: the stepped core
// must not silently regress simulation wall-clock. The primary check is the
// scheduler-vs-baseline ratio (runner-speed independent); the absolute floor
// backstops regressions that slow both paths.
func TestSchedulerOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock guard is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard skipped in short mode")
	}
	f := guardWorkload(t)
	// Warm both paths once, then take the best of three to shed noise.
	steppedRun(t, f)
	baselineRun(t, f)
	best := func(run func(testing.TB, *fixture) time.Duration) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := run(t, f); d < b {
				b = d
			}
		}
		return b
	}
	stepped := best(steppedRun)
	baseline := best(baselineRun)

	ratio := float64(stepped) / float64(baseline)
	keysPerSec := float64(len(f.probeKeys)) / stepped.Seconds()
	t.Logf("stepped=%v baseline=%v ratio=%.2fx throughput=%.0f keys/sec", stepped, baseline, ratio, keysPerSec)
	if ratio > maxSchedulerOverheadRatio {
		t.Fatalf("scheduler overhead ratio %.2fx exceeds the %.1fx budget (stepped %v vs baseline %v)",
			ratio, maxSchedulerOverheadRatio, stepped, baseline)
	}
	if keysPerSec < minKeysPerSec {
		t.Fatalf("stepped core simulates %.0f keys/sec, below the %d keys/sec sanity floor", keysPerSec, minKeysPerSec)
	}
}

// maxMultiAgentOverheadRatio bounds what the system scheduler's cross-agent
// merging adds: a K-agent co-run performs the same simulated work as K solo
// runs (same programs, same key streams), so its wall-clock over the summed
// solo wall-clocks isolates the event-heap merge plus contention-induced
// extra stall bookkeeping. At introduction the ratio measured ~1.1x; the
// budget sits at roughly double, like the single-agent guard.
const maxMultiAgentOverheadRatio = 2.0

// multiAgentAgents builds K independent offload agents over one fixture's
// index (private result regions and bundles) attached to the given
// constructor of hierarchy views.
func multiAgentAgents(tb testing.TB, f *fixture, k int, hier func(i int) *mem.Hierarchy) []system.Agent {
	tb.Helper()
	agents := make([]system.Agent, k)
	for i := 0; i < k; i++ {
		resultBase := f.as.AllocAligned(fmt.Sprintf("guard.results.%d", i), uint64(len(f.probeKeys))*8+64)
		bundle, err := program.ForTable(f.table, resultBase)
		if err != nil {
			tb.Fatal(err)
		}
		acc, err := New(Config{NumWalkers: 4, QueueDepth: 2}, hier(i), f.as,
			bundle.Dispatcher, bundle.Walker, bundle.Producer)
		if err != nil {
			tb.Fatal(err)
		}
		o, err := acc.StartOffload(OffloadRequest{KeyBase: f.keyBase, KeyCount: uint64(len(f.probeKeys))})
		if err != nil {
			tb.Fatal(err)
		}
		agents[i] = o
	}
	return agents
}

// TestMultiAgentSchedulerOverheadBudget is the bench-guard for the system
// scheduler: co-running K agents on one shared level must not cost
// meaningfully more wall-clock than running the same K offloads solo, so
// multi-agent experiments stay as affordable as their single-agent parts.
func TestMultiAgentSchedulerOverheadBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock guard is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard skipped in short mode")
	}
	const k = 4
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 60000, 2000, 1<<16)

	// Both sides time only the scheduler runs: agent construction
	// (allocation, program assembly, offload setup) happens outside the
	// clock so the ratio isolates what cross-agent merging adds.
	soloRun := func() time.Duration {
		sets := make([][]system.Agent, k)
		for i := 0; i < k; i++ {
			sets[i] = multiAgentAgents(t, f, 1, func(int) *mem.Hierarchy {
				return mem.NewHierarchy(mem.DefaultConfig())
			})
		}
		start := time.Now()
		for _, agents := range sets {
			if err := system.Run(agents...); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	coRun := func() time.Duration {
		top := mem.DefaultTopology()
		sl := mem.NewSharedLevel(top)
		agents := multiAgentAgents(t, f, k, func(i int) *mem.Hierarchy {
			return sl.NewAgent(top.Agent(fmt.Sprintf("widx%d", i)))
		})
		start := time.Now()
		if err := system.Run(agents...); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm once, then best of three.
	soloRun()
	coRun()
	best := func(run func() time.Duration) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			if d := run(); d < b {
				b = d
			}
		}
		return b
	}
	solo := best(soloRun)
	co := best(coRun)
	ratio := float64(co) / float64(solo)
	t.Logf("co-run(%d agents)=%v solo-sum=%v ratio=%.2fx", k, co, solo, ratio)
	if ratio > maxMultiAgentOverheadRatio {
		t.Fatalf("multi-agent scheduler overhead %.2fx exceeds the %.1fx budget (co %v vs solo %v)",
			ratio, maxMultiAgentOverheadRatio, co, solo)
	}
}

// BenchmarkOffloadScheduler measures the stepped core on the guard workload
// (keys/sec is reported as a metric).
func BenchmarkOffloadScheduler(b *testing.B) {
	f := guardWorkload(b)
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		elapsed += steppedRun(b, f)
	}
	if elapsed > 0 {
		b.ReportMetric(float64(len(f.probeKeys)*b.N)/elapsed.Seconds(), "sim-keys/sec")
	}
}
