package widx

// Coverage for TOUCH, the ISA's software-prefetch instruction (the ROADMAP
// "prefetch experiments" item): the stepped execution core must yield to the
// scheduler on a TOUCH exactly like a load (so prefetches contend for L1
// ports, MSHRs and bandwidth at their true cycles), and a dispatcher that
// TOUCHes the bucket it just hashed must raise memory-level parallelism —
// the walker's demand load finds the block's fill already in flight (a
// combined miss) or complete, cutting its memory stalls.

import (
	"testing"

	"widx/internal/hashidx"
	"widx/internal/isa"
)

// TestSchedulerYieldsOnTouch asserts the unit stepper's contract for TOUCH:
// the unit pauses in UnitWaitMem before the prefetch, the scheduler grant
// performs it as a mem.Prefetch (counted, non-blocking), and execution
// resumes past it.
func TestSchedulerYieldsOnTouch(t *testing.T) {
	f := newFixture(t, hashidx.LayoutInline, hashidx.HashSimple, 64, 8, 64)
	prog := &isa.Program{
		Name:      "touch_probe",
		Kind:      isa.Dispatcher,
		InputRegs: []isa.Reg{1},
		Code: []isa.Instruction{
			{Op: isa.TOUCH, SrcA: 1, Imm: 0},
			{Op: isa.ADD, Dst: 2, SrcA: 1, UseImm: true, Imm: 8},
			{Op: isa.TOUCH, SrcA: 2, Imm: 0},
			{Op: isa.HALT},
		},
	}
	u, err := NewUnit("toucher", prog, f.hier, f.as)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the touched page's translation (prefetches still need the MMU;
	// only the fill is non-blocking) while leaving the L1 cold, so the
	// touches below take the L1-miss path without stalling.
	f.hier.WarmLLCOnly(f.keyBase)
	if err := u.Start([]uint64{f.keyBase}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if u.State() != UnitWaitMem {
			t.Fatalf("touch %d: unit did not yield to the scheduler (state %v)", i, u.State())
		}
		before := u.WantCycle()
		if err := u.GrantMem(); err != nil {
			t.Fatal(err)
		}
		// A prefetch never blocks the issuer: the unit advances by the
		// issue slot, not by the miss latency.
		if got := u.WantCycle() - before; got > 8 {
			t.Fatalf("touch %d stalled the unit for %d cycles", i, got)
		}
	}
	if u.State() != UnitIdle {
		t.Fatalf("unit did not finish after the touches (state %v)", u.State())
	}
	if got := f.hier.Stats().Prefetches; got != 2 {
		t.Fatalf("hierarchy counted %d prefetches, want 2", got)
	}
}

// touchingDispatcher clones the generated dispatcher and inserts a TOUCH of
// the just-computed bucket address ahead of the EMIT — the software-prefetch
// idiom of the custom_schema example, expressed on the generated program.
func touchingDispatcher(t *testing.T, f *fixture) *isa.Program {
	t.Helper()
	p := f.bundle.Dispatcher.Clone()
	for i, in := range p.Code {
		if in.Op == isa.EMIT {
			code := append([]isa.Instruction{}, p.Code[:i]...)
			code = append(code, isa.Instruction{Op: isa.TOUCH, SrcA: RegTestBucketAddr})
			code = append(code, p.Code[i:]...)
			p.Code = code
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	t.Fatal("dispatcher has no EMIT")
	return nil
}

// RegTestBucketAddr mirrors program.RegBucketAddr (the dispatcher's first
// output register) without importing the package into every call site.
const RegTestBucketAddr = isa.Reg(2)

// TestTouchPrefetchImprovesMLP runs the same memory-resident offload with
// and without the dispatcher's bucket TOUCH. The prefetch must overlap the
// bucket fill with the dispatcher's run-ahead: measurably more combined
// misses (the walker's load merges into the prefetch's in-flight MSHR),
// higher measured MLP, and fewer total cycles.
func TestTouchPrefetchImprovesMLP(t *testing.T) {
	run := func(touch bool) *OffloadResult {
		f := newFixture(t, hashidx.LayoutInline, hashidx.HashRobust, 60000, 2500, 1<<16)
		f.hier.SetStrictOrder(true)
		disp := f.bundle.Dispatcher
		if touch {
			disp = touchingDispatcher(t, f)
		}
		// One walker with a deep queue: the dispatcher runs several keys
		// ahead, so its TOUCHes have time to pull blocks in before the
		// walker arrives.
		acc, err := New(Config{NumWalkers: 1, QueueDepth: 8}, f.hier, f.as,
			disp, f.bundle.Walker, f.bundle.Producer)
		if err != nil {
			t.Fatal(err)
		}
		return f.offload(t, acc)
	}
	plain := run(false)
	touched := run(true)

	if touched.MemStats.Prefetches == 0 {
		t.Fatal("touching dispatcher issued no prefetches")
	}
	if plain.MemStats.Prefetches != 0 {
		t.Fatalf("plain dispatcher issued %d prefetches", plain.MemStats.Prefetches)
	}
	// Functional output is untouched by prefetching.
	if matchFingerprint(plain.Matches) != matchFingerprint(touched.Matches) {
		t.Fatal("prefetching changed the match stream")
	}
	// The walker's demand loads now merge into in-flight prefetch fills.
	if touched.MemStats.CombinedMisses <= plain.MemStats.CombinedMisses {
		t.Fatalf("combined misses should rise with prefetching: plain %d, touched %d",
			plain.MemStats.CombinedMisses, touched.MemStats.CombinedMisses)
	}
	// More fills in flight at once: the measured MLP rises.
	plainMLP := plain.MemStats.MeanMSHROccupancy()
	touchedMLP := touched.MemStats.MeanMSHROccupancy()
	if touchedMLP <= plainMLP {
		t.Fatalf("mean MSHR occupancy should rise with prefetching: plain %.2f, touched %.2f",
			plainMLP, touchedMLP)
	}
	// And the overlap pays: the offload gets faster, driven by walker
	// memory stalls.
	if touched.TotalCycles >= plain.TotalCycles {
		t.Fatalf("prefetching slowed the offload: plain %d, touched %d cycles",
			plain.TotalCycles, touched.TotalCycles)
	}
	if touched.WalkerTotal.Mem >= plain.WalkerTotal.Mem {
		t.Fatalf("walker memory stalls should fall: plain %d, touched %d",
			plain.WalkerTotal.Mem, touched.WalkerTotal.Mem)
	}
	t.Logf("plain: %d cycles (walker mem %d, MLP %.2f); touched: %d cycles (walker mem %d, MLP %.2f, %d prefetches, combined %d->%d)",
		plain.TotalCycles, plain.WalkerTotal.Mem, plainMLP,
		touched.TotalCycles, touched.WalkerTotal.Mem, touchedMLP,
		touched.MemStats.Prefetches, plain.MemStats.CombinedMisses, touched.MemStats.CombinedMisses)
}
