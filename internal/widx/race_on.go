//go:build race

package widx

// raceEnabled reports whether the race detector is compiled in; perf guards
// scale their budgets accordingly.
const raceEnabled = true
