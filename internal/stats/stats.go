// Package stats provides small statistical helpers used throughout the
// simulator and the benchmark harness: means, geometric means, standard
// deviations, confidence intervals and deterministic pseudo-random number
// generation for workload synthesis.
//
// The package is dependency-free and deliberately simple; it is not a
// general-purpose statistics library, only what the Widx reproduction needs
// to report SMARTS-style sampled measurements (mean with a confidence
// interval) and paper-style geometric-mean speedups.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregate functions when given no samples.
var ErrEmpty = errors.New("stats: no samples")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive values are not
// meaningful for a geometric mean; they are clamped to a tiny positive value
// so that a single zero sample does not collapse the whole aggregate, which
// mirrors how speedup geomeans are reported in the paper (every speedup is
// strictly positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input slice is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// ConfidenceInterval describes a mean together with its half-width at a given
// confidence level, in the style of SimFlex/SMARTS sampled measurements
// ("computed at 95% confidence with an average error of less than 5%").
type ConfidenceInterval struct {
	Mean       float64 // sample mean
	HalfWidth  float64 // half-width of the interval around the mean
	Confidence float64 // confidence level, e.g. 0.95
	N          int     // number of samples
}

// RelativeError returns the half-width as a fraction of the mean. It reports
// 0 when the mean is 0.
func (ci ConfidenceInterval) RelativeError() float64 {
	if ci.Mean == 0 {
		return 0
	}
	return math.Abs(ci.HalfWidth / ci.Mean)
}

// Low returns the lower bound of the interval.
func (ci ConfidenceInterval) Low() float64 { return ci.Mean - ci.HalfWidth }

// High returns the upper bound of the interval.
func (ci ConfidenceInterval) High() float64 { return ci.Mean + ci.HalfWidth }

// zValue maps the supported confidence levels to standard-normal critical
// values. The simulator only ever asks for 90/95/99%.
func zValue(confidence float64) float64 {
	switch {
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.960
	case confidence >= 0.90:
		return 1.645
	default:
		return 1.0
	}
}

// NewConfidenceInterval computes the normal-approximation confidence interval
// of the mean of xs at the given confidence level (e.g. 0.95).
func NewConfidenceInterval(xs []float64, confidence float64) (ConfidenceInterval, error) {
	if len(xs) == 0 {
		return ConfidenceInterval{}, ErrEmpty
	}
	m := Mean(xs)
	sd := StdDev(xs)
	half := zValue(confidence) * sd / math.Sqrt(float64(len(xs)))
	return ConfidenceInterval{Mean: m, HalfWidth: half, Confidence: confidence, N: len(xs)}, nil
}

// Normalize divides every element of xs by base and returns the result as a
// new slice. It is used to produce "normalized to OoO / normalized to Small"
// style figures. A zero base yields a slice of zeros.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Speedup returns baseline/improved, the conventional speedup metric.
// It returns +Inf when improved is 0 and 0 when baseline is 0.
func Speedup(baseline, improved float64) float64 {
	if improved == 0 {
		if baseline == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return baseline / improved
}
