package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"uniform", []float64{2, 2, 2, 2}, 2},
		{"mixed", []float64{1, 2, 3, 4}, 2.5},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("GeoMean(2,2,2) = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
	// Non-positive inputs are clamped rather than producing NaN.
	if got := GeoMean([]float64{0, 4}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("GeoMean with zero produced %v", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic example is 4.571428..., stddev ~2.138.
	if got := Variance(xs); !almostEqual(got, 4.571428571428571, 1e-9) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(4.571428571428571), 1e-9) {
		t.Fatalf("StdDev = %v", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Fatalf("Variance single sample = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("Min/Max of empty slice should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	p50, err := Percentile(xs, 50)
	if err != nil || p50 != 3 {
		t.Fatalf("P50 = %v err=%v", p50, err)
	}
	p0, _ := Percentile(xs, 0)
	p100, _ := Percentile(xs, 100)
	if p0 != 1 || p100 != 5 {
		t.Fatalf("P0=%v P100=%v", p0, p100)
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("expected error for empty slice")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("expected error for out-of-range percentile")
	}
}

func TestConfidenceInterval(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	ci, err := NewConfidenceInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Mean != 10 || ci.HalfWidth != 0 {
		t.Fatalf("constant samples should give zero half-width, got %+v", ci)
	}
	if ci.Low() != 10 || ci.High() != 10 {
		t.Fatalf("bounds wrong: %v..%v", ci.Low(), ci.High())
	}
	if ci.RelativeError() != 0 {
		t.Fatalf("relative error = %v, want 0", ci.RelativeError())
	}

	xs2 := []float64{8, 9, 10, 11, 12}
	ci2, err := NewConfidenceInterval(xs2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci2.Mean != 10 {
		t.Fatalf("mean = %v", ci2.Mean)
	}
	if ci2.HalfWidth <= 0 {
		t.Fatalf("half width should be positive, got %v", ci2.HalfWidth)
	}
	if _, err := NewConfidenceInterval(nil, 0.95); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
}

func TestNormalizeAndSpeedup(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v", got)
		}
	}
	zeros := Normalize([]float64{1, 2}, 0)
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Fatalf("Normalize by zero = %v", zeros)
	}
	if s := Speedup(10, 2); s != 5 {
		t.Fatalf("Speedup = %v", s)
	}
	if s := Speedup(10, 0); !math.IsInf(s, 1) {
		t.Fatalf("Speedup by zero = %v", s)
	}
	if s := Speedup(0, 0); s != 0 {
		t.Fatalf("Speedup(0,0) = %v", s)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should produce identical streams")
		}
	}
	c := NewRNG(43)
	same := 0
	d := NewRNG(42)
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce a stuck-at-zero stream")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of bounds: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestRNGUint64n(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(5); v >= 5 {
			t.Fatalf("Uint64n out of bounds: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) should panic")
		}
	}()
	r.Uint64n(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(21)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be noticeably more popular than rank 50 under s=1.
	if counts[0] <= counts[50]*2 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: mean of a normalized slice by its own mean is 1 (when mean != 0).
func TestPropertyNormalizeByMean(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // strictly positive
		}
		m := Mean(xs)
		norm := Normalize(xs, m)
		return almostEqual(Mean(norm), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geometric mean is bounded by min and max of positive samples.
func TestPropertyGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%1000) + 1
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: speedup is anti-symmetric: Speedup(a,b) * Speedup(b,a) == 1.
func TestPropertySpeedupReciprocal(t *testing.T) {
	f := func(a, b uint16) bool {
		fa, fb := float64(a)+1, float64(b)+1
		return almostEqual(Speedup(fa, fb)*Speedup(fb, fa), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
