package stats

import "math"

// RNG is a small deterministic pseudo-random number generator
// (xorshift64* based) used for workload synthesis. The standard library's
// math/rand would also work, but a tiny local generator keeps workload
// generation bit-for-bit reproducible across Go releases, which matters when
// EXPERIMENTS.md records concrete measured numbers.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift generators have an all-zero
// absorbing state.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32-bit pseudo-random value.
func (r *RNG) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice of ints.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using the provided
// swap function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws values in [0, n) following an approximate Zipfian distribution
// with exponent s (s > 0). It uses a precomputed cumulative table, so it is
// intended for moderate n (the workload generators use it for skewed key
// popularity in probe streams).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s using rng as the
// underlying source. It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("stats: Zipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
