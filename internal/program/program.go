// Package program generates the canonical Widx unit programs used throughout
// the repository: dispatcher programs that hash probe keys, walker programs
// that traverse bucket node lists for the supported node layouts, and the
// output-producer program that stores matches to the result region.
//
// A database developer targeting Widx writes these three functions against
// the programming API of Section 4.2 of the paper; this package plays that
// role for the two data layouts the evaluation uses (the hash-join kernel's
// inline layout and MonetDB's indirect layout) and for both hash functions.
// The generated programs compute bit-for-bit the same hashes and matches as
// the software index in internal/hashidx, which the tests cross-check.
//
// Register conventions (shared between the generated programs and the Widx
// configuration logic in internal/widx):
//
//	dispatcher  in:  r1 = address of the probe key in the input column
//	            out: r2 = bucket header (node) address, r3 = probe key
//	walker      in:  r1 = node address, r2 = probe key
//	            out: r3 = match payload (row id or payload value)
//	producer    in:  r1 = match payload
//	            r20 = result-region write cursor (advances per store)
//
// Registers r10..r15 hold hash constants, r20 the bucket array base, r21 the
// bucket index mask; all are preloaded from the Widx control block.
package program

import (
	"fmt"

	"widx/internal/hashidx"
	"widx/internal/isa"
)

// Register assignments. Exported so internal/widx and tests can refer to them
// symbolically rather than by number.
const (
	// Dispatcher registers.
	RegKeyAddr    = isa.Reg(1) // input: address of the probe key
	RegBucketAddr = isa.Reg(2) // output: bucket header address
	RegKey        = isa.Reg(3) // output: the probe key value
	RegHashTmp    = isa.Reg(4)
	RegIdxTmp     = isa.Reg(5)
	RegAddrTmp    = isa.Reg(6)

	// Walker registers (input r1/r2 reuse the names below).
	RegNode    = isa.Reg(1) // input: current node address
	RegProbe   = isa.Reg(2) // input: probe key
	RegPayload = isa.Reg(3) // output: matching payload
	RegNodeKey = isa.Reg(4)
	RegCmp     = isa.Reg(5)
	RegRef     = isa.Reg(6)

	// Producer registers.
	RegMatch  = isa.Reg(1)  // input: payload to store
	RegCursor = isa.Reg(20) // result-region write cursor

	// Constant registers.
	RegConstA     = isa.Reg(10)
	RegConstB     = isa.Reg(11)
	RegConstC     = isa.Reg(12)
	RegMaskConst  = isa.Reg(13)
	RegPrimeConst = isa.Reg(14)
	RegBucketBase = isa.Reg(21)
	RegBucketMask = isa.Reg(22)
	RegKeyColBase = isa.Reg(23)
)

// Spec describes the index an offload targets, in the terms the programming
// API of Section 4.2 requires: data layout, hash function, table geometry and
// the result destination.
type Spec struct {
	// Layout is the node layout of the probed hash table.
	Layout hashidx.Layout
	// Hash is the key-hashing function.
	Hash hashidx.HashKind
	// BucketBase is the virtual address of the bucket header array.
	BucketBase uint64
	// BucketMask is the bucket-index mask (bucket count - 1).
	BucketMask uint64
	// NodeSize is the node stride in bytes.
	NodeSize uint64
	// ResultBase is the virtual address the producer writes matches to.
	ResultBase uint64
}

// SpecForTable derives a Spec from a built hash index and a result region.
func SpecForTable(t *hashidx.Table, resultBase uint64) Spec {
	return Spec{
		Layout:     t.Config().Layout,
		Hash:       t.Config().Hash,
		BucketBase: t.BucketBase(),
		BucketMask: t.BucketMask(),
		NodeSize:   t.NodeSize(),
		ResultBase: resultBase,
	}
}

// Validate reports obviously unusable specs.
func (s Spec) Validate() error {
	if s.BucketBase == 0 {
		return fmt.Errorf("program: zero bucket base")
	}
	if s.NodeSize == 0 {
		return fmt.Errorf("program: zero node size")
	}
	if s.BucketMask == 0 {
		return fmt.Errorf("program: zero bucket mask (need at least 2 buckets)")
	}
	switch s.Layout {
	case hashidx.LayoutInline, hashidx.LayoutIndirect:
	default:
		return fmt.Errorf("program: unknown layout %d", s.Layout)
	}
	switch s.Hash {
	case hashidx.HashSimple, hashidx.HashRobust:
	default:
		return fmt.Errorf("program: unknown hash kind %d", s.Hash)
	}
	return nil
}

// Dispatcher generates the key-hashing program for the spec. Per work item it
// loads the probe key from the input column (high L1 locality: eight 8-byte
// keys per cache block), hashes it, computes the bucket header address and
// emits (bucket address, key) to the walker queue.
func Dispatcher(s Spec) (*isa.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := &isa.Program{
		Name:       fmt.Sprintf("dispatch_%s_%s", s.Hash, s.Layout),
		Kind:       isa.Dispatcher,
		InputRegs:  []isa.Reg{RegKeyAddr},
		OutputRegs: []isa.Reg{RegBucketAddr, RegKey},
		ConstRegs: map[isa.Reg]uint64{
			RegBucketBase: s.BucketBase,
			RegBucketMask: s.BucketMask,
		},
	}

	// Load the key.
	p.Code = append(p.Code, isa.Instruction{Op: isa.LD, Dst: RegKey, SrcA: RegKeyAddr})

	// Hash it into RegHashTmp.
	switch s.Hash {
	case hashidx.HashSimple:
		p.ConstRegs[RegMaskConst] = hashidx.SimpleMask
		p.ConstRegs[RegPrimeConst] = hashidx.SimplePrime
		p.Code = append(p.Code,
			isa.Instruction{Op: isa.AND, Dst: RegHashTmp, SrcA: RegKey, SrcB: RegMaskConst},
			isa.Instruction{Op: isa.XOR, Dst: RegHashTmp, SrcA: RegHashTmp, SrcB: RegPrimeConst},
		)
	case hashidx.HashRobust:
		p.ConstRegs[RegConstA] = hashidx.RobustConstA
		p.ConstRegs[RegConstB] = hashidx.RobustConstB
		p.ConstRegs[RegConstC] = hashidx.RobustConstC
		h := RegHashTmp
		p.Code = append(p.Code,
			// h = key ^ (key >> 30)
			isa.Instruction{Op: isa.XORSHF, Dst: h, SrcA: RegKey, SrcB: RegKey, Shift: -30},
			// h += A
			isa.Instruction{Op: isa.ADD, Dst: h, SrcA: h, SrcB: RegConstA},
			// h ^= h >> 27
			isa.Instruction{Op: isa.XORSHF, Dst: h, SrcA: h, SrcB: h, Shift: -27},
			// h += B
			isa.Instruction{Op: isa.ADD, Dst: h, SrcA: h, SrcB: RegConstB},
			// h ^= h << 13
			isa.Instruction{Op: isa.XORSHF, Dst: h, SrcA: h, SrcB: h, Shift: 13},
			// h += C
			isa.Instruction{Op: isa.ADD, Dst: h, SrcA: h, SrcB: RegConstC},
			// h ^= h >> 31
			isa.Instruction{Op: isa.XORSHF, Dst: h, SrcA: h, SrcB: h, Shift: -31},
			// h += A
			isa.Instruction{Op: isa.ADD, Dst: h, SrcA: h, SrcB: RegConstA},
			// h ^= h << 7
			isa.Instruction{Op: isa.XORSHF, Dst: h, SrcA: h, SrcB: h, Shift: 7},
			// h ^= h >> 17
			isa.Instruction{Op: isa.XORSHF, Dst: h, SrcA: h, SrcB: h, Shift: -17},
		)
	}

	// Bucket index and address: a masked index followed by one scaled add
	// (both supported node strides are powers of two).
	p.Code = append(p.Code,
		isa.Instruction{Op: isa.AND, Dst: RegIdxTmp, SrcA: RegHashTmp, SrcB: RegBucketMask},
	)
	switch s.NodeSize {
	case hashidx.InlineNodeSize: // 32
		p.Code = append(p.Code,
			isa.Instruction{Op: isa.ADDSHF, Dst: RegBucketAddr, SrcA: RegBucketBase, SrcB: RegIdxTmp, Shift: 5},
		)
	case hashidx.IndirectNodeSize: // 16
		p.Code = append(p.Code,
			isa.Instruction{Op: isa.ADDSHF, Dst: RegBucketAddr, SrcA: RegBucketBase, SrcB: RegIdxTmp, Shift: 4},
		)
	default:
		return nil, fmt.Errorf("program: unsupported node size %d", s.NodeSize)
	}

	p.Code = append(p.Code,
		isa.Instruction{Op: isa.EMIT},
		isa.Instruction{Op: isa.HALT},
	)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Walker generates the node-list traversal program for the spec. Per work
// item it receives (node address, probe key), chases the chain, and emits the
// payload of every matching node to the producer queue.
func Walker(s Spec) (*isa.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := &isa.Program{
		Name:       fmt.Sprintf("walk_%s", s.Layout),
		Kind:       isa.Walker,
		InputRegs:  []isa.Reg{RegNode, RegProbe},
		OutputRegs: []isa.Reg{RegPayload},
		ConstRegs:  map[isa.Reg]uint64{},
	}

	switch s.Layout {
	case hashidx.LayoutInline:
		// loop: key = [node+0]; if key == probe { payload = [node+8]; emit }
		//       node = [node+16]; if node == 0 halt; goto loop
		// An empty bucket header carries EmptyKey, which never equals a probe
		// key, and a zero next pointer, so no special case is needed.
		p.Code = []isa.Instruction{
			/* 0 loop */ {Op: isa.LD, Dst: RegNodeKey, SrcA: RegNode, Imm: hashidx.InlineKeyOffset},
			/* 1 */ {Op: isa.CMP, Dst: RegCmp, SrcA: RegNodeKey, SrcB: RegProbe},
			/* 2 */ {Op: isa.BLE, SrcA: RegCmp, SrcB: 0, Imm: 2}, // not equal -> pc 5
			/* 3 */ {Op: isa.LD, Dst: RegPayload, SrcA: RegNode, Imm: hashidx.InlinePayloadOffset},
			/* 4 */ {Op: isa.EMIT},
			/* 5 */ {Op: isa.LD, Dst: RegNode, SrcA: RegNode, Imm: hashidx.InlineNextOffset},
			/* 6 */ {Op: isa.BLE, SrcA: RegNode, SrcB: 0, Imm: 1}, // node == 0 -> halt
			/* 7 */ {Op: isa.BA, Imm: -8}, // back to loop
			/* 8 */ {Op: isa.HALT},
		}

	case hashidx.LayoutIndirect:
		// loop: ref = [node+0]; if ref == 0 halt (empty bucket)
		//       key = [ref]; if key == probe { payload = ref; emit }
		//       node = [node+8]; if node == 0 halt; goto loop
		p.Code = []isa.Instruction{
			/* 0 loop */ {Op: isa.LD, Dst: RegRef, SrcA: RegNode, Imm: hashidx.IndirectRefOffset},
			/* 1 */ {Op: isa.BLE, SrcA: RegRef, SrcB: 0, Imm: 8}, // empty -> halt (pc 10)
			/* 2 */ {Op: isa.LD, Dst: RegNodeKey, SrcA: RegRef},
			/* 3 */ {Op: isa.CMP, Dst: RegCmp, SrcA: RegNodeKey, SrcB: RegProbe},
			/* 4 */ {Op: isa.BLE, SrcA: RegCmp, SrcB: 0, Imm: 2}, // not equal -> pc 7
			/* 5 */ {Op: isa.ADD, Dst: RegPayload, SrcA: RegRef, SrcB: 0},
			/* 6 */ {Op: isa.EMIT},
			/* 7 */ {Op: isa.LD, Dst: RegNode, SrcA: RegNode, Imm: hashidx.IndirectNextOffset},
			/* 8 */ {Op: isa.BLE, SrcA: RegNode, SrcB: 0, Imm: 1}, // node == 0 -> halt
			/* 9 */ {Op: isa.BA, Imm: -10},
			/* 10 */ {Op: isa.HALT},
		}
	}

	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Producer generates the output-producer program: it stores each match to the
// result region and advances the write cursor. The cursor lives in RegCursor,
// which persists across work items (Widx unit registers are only initialized
// at configuration time).
func Producer(s Spec) (*isa.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.ResultBase == 0 {
		return nil, fmt.Errorf("program: producer needs a result region")
	}
	p := &isa.Program{
		Name:      "produce",
		Kind:      isa.Producer,
		InputRegs: []isa.Reg{RegMatch},
		ConstRegs: map[isa.Reg]uint64{RegCursor: s.ResultBase},
		Code: []isa.Instruction{
			{Op: isa.ST, SrcA: RegCursor, SrcB: RegMatch},
			{Op: isa.ADD, Dst: RegCursor, SrcA: RegCursor, UseImm: true, Imm: 8},
			{Op: isa.HALT},
		},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Bundle holds the three programs of one offload.
type Bundle struct {
	Dispatcher *isa.Program
	Walker     *isa.Program
	Producer   *isa.Program
	Spec       Spec
}

// Build generates all three programs for the spec.
func Build(s Spec) (*Bundle, error) {
	d, err := Dispatcher(s)
	if err != nil {
		return nil, err
	}
	w, err := Walker(s)
	if err != nil {
		return nil, err
	}
	pr, err := Producer(s)
	if err != nil {
		return nil, err
	}
	return &Bundle{Dispatcher: d, Walker: w, Producer: pr, Spec: s}, nil
}

// ForTable generates the program bundle for a built index and result region.
func ForTable(t *hashidx.Table, resultBase uint64) (*Bundle, error) {
	return Build(SpecForTable(t, resultBase))
}

// ControlBlock serializes the bundle into the Widx control block the host
// core points the accelerator at (Section 4.3).
func (b *Bundle) ControlBlock() (*isa.ControlBlock, error) {
	return isa.BuildControlBlock(b.Dispatcher, b.Walker, b.Producer)
}
