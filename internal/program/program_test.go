package program

import (
	"testing"

	"widx/internal/hashidx"
	"widx/internal/isa"
	"widx/internal/vm"
)

func testSpec(layout hashidx.Layout, hash hashidx.HashKind) Spec {
	nodeSize := uint64(hashidx.InlineNodeSize)
	if layout == hashidx.LayoutIndirect {
		nodeSize = hashidx.IndirectNodeSize
	}
	return Spec{
		Layout:     layout,
		Hash:       hash,
		BucketBase: 0x1_0000_0000,
		BucketMask: 1023,
		NodeSize:   nodeSize,
		ResultBase: 0x2_0000_0000,
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec(hashidx.LayoutInline, hashidx.HashSimple)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*Spec){
		"zero base":  func(s *Spec) { s.BucketBase = 0 },
		"zero node":  func(s *Spec) { s.NodeSize = 0 },
		"zero mask":  func(s *Spec) { s.BucketMask = 0 },
		"bad layout": func(s *Spec) { s.Layout = hashidx.Layout(7) },
		"bad hash":   func(s *Spec) { s.Hash = hashidx.HashKind(7) },
	}
	for name, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

func TestDispatcherPrograms(t *testing.T) {
	for _, hash := range []hashidx.HashKind{hashidx.HashSimple, hashidx.HashRobust} {
		for _, layout := range []hashidx.Layout{hashidx.LayoutInline, hashidx.LayoutIndirect} {
			s := testSpec(layout, hash)
			p, err := Dispatcher(s)
			if err != nil {
				t.Fatalf("%v/%v: %v", hash, layout, err)
			}
			if p.Kind != isa.Dispatcher {
				t.Fatal("dispatcher kind wrong")
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("%v/%v: generated invalid program: %v", hash, layout, err)
			}
			// One key load per item; no other memory ops.
			if got := p.MemOpsPerItem(); got != 1 {
				t.Fatalf("%v/%v: dispatcher mem ops = %d, want 1", hash, layout, got)
			}
			// The ALU work must reflect the hash cost difference.
			if hash == hashidx.HashRobust && p.ComputeOps() < 10 {
				t.Fatalf("robust dispatcher too few compute ops: %d", p.ComputeOps())
			}
			if hash == hashidx.HashSimple && p.ComputeOps() > 8 {
				t.Fatalf("simple dispatcher too many compute ops: %d", p.ComputeOps())
			}
			// Everything must be legal for a dispatcher per Table 1.
			for _, in := range p.Code {
				if !in.Op.LegalFor(isa.Dispatcher) {
					t.Fatalf("illegal op %v in dispatcher program", in.Op)
				}
			}
		}
	}
	// Unsupported node size is rejected.
	s := testSpec(hashidx.LayoutInline, hashidx.HashSimple)
	s.NodeSize = 40
	if _, err := Dispatcher(s); err == nil {
		t.Fatal("unsupported node size accepted")
	}
}

func TestWalkerPrograms(t *testing.T) {
	for _, layout := range []hashidx.Layout{hashidx.LayoutInline, hashidx.LayoutIndirect} {
		p, err := Walker(testSpec(layout, hashidx.HashRobust))
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != isa.Walker {
			t.Fatal("walker kind wrong")
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		// The indirect walker needs one more load per node (the key fetch).
		if layout == hashidx.LayoutIndirect && p.MemOpsPerItem() != 3 {
			t.Fatalf("indirect walker mem ops = %d, want 3", p.MemOpsPerItem())
		}
		if layout == hashidx.LayoutInline && p.MemOpsPerItem() != 3 {
			// key load + payload load + next load
			t.Fatalf("inline walker mem ops = %d, want 3", p.MemOpsPerItem())
		}
	}
}

func TestProducerProgram(t *testing.T) {
	p, err := Producer(testSpec(hashidx.LayoutInline, hashidx.HashSimple))
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != isa.Producer {
		t.Fatal("producer kind wrong")
	}
	if p.ConstRegs[RegCursor] == 0 {
		t.Fatal("producer cursor not preloaded")
	}
	s := testSpec(hashidx.LayoutInline, hashidx.HashSimple)
	s.ResultBase = 0
	if _, err := Producer(s); err == nil {
		t.Fatal("producer without result region accepted")
	}
}

func TestBuildBundleAndControlBlock(t *testing.T) {
	b, err := Build(testSpec(hashidx.LayoutIndirect, hashidx.HashRobust))
	if err != nil {
		t.Fatal(err)
	}
	if b.Dispatcher == nil || b.Walker == nil || b.Producer == nil {
		t.Fatal("bundle incomplete")
	}
	// Queue plumbing: dispatcher output arity matches walker input arity, and
	// walker output arity matches producer input arity.
	if len(b.Dispatcher.OutputRegs) != len(b.Walker.InputRegs) {
		t.Fatal("dispatcher/walker queue arity mismatch")
	}
	if len(b.Walker.OutputRegs) != len(b.Producer.InputRegs) {
		t.Fatal("walker/producer queue arity mismatch")
	}
	cb, err := b.ControlBlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(cb.Sections) != 3 {
		t.Fatalf("control block sections = %d", len(cb.Sections))
	}
	progs, err := cb.Programs()
	if err != nil {
		t.Fatal(err)
	}
	if progs[0].Kind != isa.Dispatcher || progs[1].Kind != isa.Walker || progs[2].Kind != isa.Producer {
		t.Fatal("control block section order wrong")
	}

	bad := testSpec(hashidx.LayoutInline, hashidx.HashSimple)
	bad.BucketBase = 0
	if _, err := Build(bad); err == nil {
		t.Fatal("invalid spec accepted by Build")
	}
}

func TestForTable(t *testing.T) {
	as := vm.New()
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	tbl, err := hashidx.Build(as, hashidx.Config{
		Layout: hashidx.LayoutInline, Hash: hashidx.HashRobust, Name: "ft",
	}, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	resultBase := as.AllocAligned("results", 4096)
	b, err := ForTable(tbl, resultBase)
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec.BucketBase != tbl.BucketBase() || b.Spec.BucketMask != tbl.BucketMask() {
		t.Fatal("spec does not reflect the table geometry")
	}
	if b.Producer.ConstRegs[RegCursor] != resultBase {
		t.Fatal("producer cursor does not point at the result region")
	}
}
