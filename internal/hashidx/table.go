package hashidx

import (
	"fmt"

	"widx/internal/vm"
)

// Layout selects the node memory layout of the index.
type Layout uint8

const (
	// LayoutInline stores the key and payload inside each node, as the
	// optimized hash-join kernel does.
	LayoutInline Layout = iota
	// LayoutIndirect stores a pointer to the base-table entry instead of the
	// key, as MonetDB does; probing requires an extra dependent load to fetch
	// the key and extra address arithmetic.
	LayoutIndirect
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutInline:
		return "inline"
	case LayoutIndirect:
		return "indirect"
	default:
		return "layout(?)"
	}
}

// Node layout offsets, shared with internal/program so that Widx walker
// programs and the software probe agree on the byte layout.
const (
	// Inline node: [key][payload][next][pad], 32 bytes. The padding keeps the
	// node stride a power of two so nodes never straddle cache blocks (two
	// nodes per 64-byte block, exactly the kernel's packing of two tuples per
	// block) and bucket addressing needs a single scaled add.
	InlineKeyOffset     = 0
	InlinePayloadOffset = 8
	InlineNextOffset    = 16
	InlineNodeSize      = 32

	// Indirect node: [tupleRef][next], 16 bytes. The key lives in the base
	// column at tupleRef; the emitted payload is the tuple's row id.
	IndirectRefOffset  = 0
	IndirectNextOffset = 8
	IndirectNodeSize   = 16
)

// EmptyKey marks an unused inline bucket header. Workload generators must not
// produce this key; Build rejects it.
const EmptyKey = ^uint64(0)

// Config describes the index to build.
type Config struct {
	// Layout selects inline or indirect nodes.
	Layout Layout
	// Hash selects the key-hashing function.
	Hash HashKind
	// BucketCount is the number of buckets; it must be a power of two.
	// Zero lets Build pick the smallest power of two that keeps the load
	// factor at or below one key per bucket on average.
	BucketCount uint64
	// Name prefixes the vm region names, so multiple indexes can coexist.
	Name string
}

// Table is a bucket-chained hash index resident in a simulated address space.
type Table struct {
	as  *vm.AddressSpace
	cfg Config

	buckets    uint64
	nodeSize   uint64
	bucketBase uint64

	// Overflow node pool: a bump allocator within a pre-sized region.
	poolBase uint64
	poolNext uint64
	poolEnd  uint64

	// Base key column for the indirect layout.
	keyColBase uint64

	numKeys    uint64
	numNodes   uint64 // overflow nodes allocated (beyond bucket headers)
	maxChain   int
	chainTotal uint64 // total nodes visited if every bucket were walked once
}

// nextPow2 returns the smallest power of two >= v (and at least 1).
func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// Build lays out and populates an index over the given keys. For the inline
// layout payloads[i] is stored with keys[i]; when payloads is nil the row
// index is used. For the indirect layout the keys are first materialized into
// a base column and nodes reference it; the emitted payload is the row index.
func Build(as *vm.AddressSpace, cfg Config, keys []uint64, payloads []uint64) (*Table, error) {
	if as == nil {
		return nil, fmt.Errorf("hashidx: nil address space")
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("hashidx: no keys to index")
	}
	if payloads != nil && len(payloads) != len(keys) {
		return nil, fmt.Errorf("hashidx: %d payloads for %d keys", len(payloads), len(keys))
	}
	if cfg.Name == "" {
		cfg.Name = "index"
	}
	buckets := cfg.BucketCount
	if buckets == 0 {
		buckets = nextPow2(uint64(len(keys)))
	}
	if buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("hashidx: bucket count %d is not a power of two", buckets)
	}

	t := &Table{as: as, cfg: cfg, buckets: buckets}
	switch cfg.Layout {
	case LayoutInline:
		t.nodeSize = InlineNodeSize
	case LayoutIndirect:
		t.nodeSize = IndirectNodeSize
	default:
		return nil, fmt.Errorf("hashidx: unknown layout %d", cfg.Layout)
	}

	// Bucket headers are nodes themselves (the paper's header-node
	// optimization): a one-node bucket needs no pointer dereference.
	t.bucketBase = as.AllocAligned(cfg.Name+".buckets", buckets*t.nodeSize)
	// Worst case every key overflows, so size the pool for len(keys) nodes.
	t.poolBase = as.AllocAligned(cfg.Name+".nodes", uint64(len(keys))*t.nodeSize)
	t.poolNext = t.poolBase
	t.poolEnd = t.poolBase + uint64(len(keys))*t.nodeSize

	if cfg.Layout == LayoutIndirect {
		t.keyColBase = as.AllocAligned(cfg.Name+".keycol", uint64(len(keys))*8)
		for i, k := range keys {
			as.Write64(t.keyColBase+uint64(i)*8, k)
		}
	}

	// Mark all inline bucket headers empty.
	if cfg.Layout == LayoutInline {
		for b := uint64(0); b < buckets; b++ {
			as.Write64(t.bucketBase+b*t.nodeSize+InlineKeyOffset, EmptyKey)
		}
	}

	for i, k := range keys {
		if k == EmptyKey {
			return nil, fmt.Errorf("hashidx: key %#x is reserved as the empty marker", EmptyKey)
		}
		payload := uint64(i)
		if payloads != nil {
			payload = payloads[i]
		}
		if err := t.insert(uint64(i), k, payload); err != nil {
			return nil, err
		}
	}
	t.numKeys = uint64(len(keys))
	t.computeChainStats()
	return t, nil
}

// insert places one key into the index.
func (t *Table) insert(row, key, payload uint64) error {
	idx := BucketIndex(HashOf(t.cfg.Hash, key), t.buckets)
	head := t.bucketBase + idx*t.nodeSize

	switch t.cfg.Layout {
	case LayoutInline:
		if t.as.Read64(head+InlineKeyOffset) == EmptyKey {
			t.as.Write64(head+InlineKeyOffset, key)
			t.as.Write64(head+InlinePayloadOffset, payload)
			return nil
		}
		node, err := t.allocNode()
		if err != nil {
			return err
		}
		t.as.Write64(node+InlineKeyOffset, key)
		t.as.Write64(node+InlinePayloadOffset, payload)
		// Link behind the header: header.next -> node -> old chain.
		t.as.Write64(node+InlineNextOffset, t.as.Read64(head+InlineNextOffset))
		t.as.Write64(head+InlineNextOffset, node)
		return nil

	case LayoutIndirect:
		ref := t.keyColBase + row*8
		if t.as.Read64(head+IndirectRefOffset) == 0 {
			t.as.Write64(head+IndirectRefOffset, ref)
			return nil
		}
		node, err := t.allocNode()
		if err != nil {
			return err
		}
		t.as.Write64(node+IndirectRefOffset, ref)
		t.as.Write64(node+IndirectNextOffset, t.as.Read64(head+IndirectNextOffset))
		t.as.Write64(head+IndirectNextOffset, node)
		return nil
	}
	return fmt.Errorf("hashidx: unknown layout")
}

// allocNode carves one overflow node from the pool.
func (t *Table) allocNode() (uint64, error) {
	if t.poolNext+t.nodeSize > t.poolEnd {
		return 0, fmt.Errorf("hashidx: node pool exhausted")
	}
	addr := t.poolNext
	t.poolNext += t.nodeSize
	t.numNodes++
	return addr, nil
}

// computeChainStats walks every bucket once to record chain statistics.
func (t *Table) computeChainStats() {
	t.maxChain = 0
	t.chainTotal = 0
	for b := uint64(0); b < t.buckets; b++ {
		n := t.chainLength(b)
		if n > t.maxChain {
			t.maxChain = n
		}
		t.chainTotal += uint64(n)
	}
}

// chainLength returns the number of occupied nodes in bucket b.
func (t *Table) chainLength(b uint64) int {
	head := t.bucketBase + b*t.nodeSize
	switch t.cfg.Layout {
	case LayoutInline:
		if t.as.Read64(head+InlineKeyOffset) == EmptyKey {
			return 0
		}
		n := 1
		next := t.as.Read64(head + InlineNextOffset)
		for next != 0 {
			n++
			next = t.as.Read64(next + InlineNextOffset)
		}
		return n
	default:
		if t.as.Read64(head+IndirectRefOffset) == 0 {
			return 0
		}
		n := 1
		next := t.as.Read64(head + IndirectNextOffset)
		for next != 0 {
			n++
			next = t.as.Read64(next + IndirectNextOffset)
		}
		return n
	}
}

// Config returns the configuration the table was built with.
func (t *Table) Config() Config { return t.cfg }

// AddressSpace returns the address space holding the index.
func (t *Table) AddressSpace() *vm.AddressSpace { return t.as }

// Buckets returns the bucket count.
func (t *Table) Buckets() uint64 { return t.buckets }

// BucketBase returns the virtual address of the bucket header array.
func (t *Table) BucketBase() uint64 { return t.bucketBase }

// BucketMask returns the index mask applied to hashed keys.
func (t *Table) BucketMask() uint64 { return t.buckets - 1 }

// NodeSize returns the node stride in bytes for the table's layout.
func (t *Table) NodeSize() uint64 { return t.nodeSize }

// BucketAddr returns the address of bucket b's header node.
func (t *Table) BucketAddr(b uint64) uint64 {
	return t.bucketBase + (b&t.BucketMask())*t.nodeSize
}

// KeyColumnBase returns the base address of the key column (indirect layout
// only; zero otherwise).
func (t *Table) KeyColumnBase() uint64 { return t.keyColBase }

// Regions returns the address ranges [start, end) the index occupies: the
// bucket array, the allocated overflow nodes, and (for the indirect layout)
// the base key column. Cache warm-up uses it to install the index working
// set, the steady state the paper's warmed checkpoints measure from.
func (t *Table) Regions() [][2]uint64 {
	r := [][2]uint64{{t.bucketBase, t.bucketBase + t.buckets*t.nodeSize}}
	if t.poolNext > t.poolBase {
		r = append(r, [2]uint64{t.poolBase, t.poolNext})
	}
	if t.cfg.Layout == LayoutIndirect {
		r = append(r, [2]uint64{t.keyColBase, t.keyColBase + t.numKeys*8})
	}
	return r
}

// NumKeys returns the number of keys inserted.
func (t *Table) NumKeys() uint64 { return t.numKeys }

// OverflowNodes returns the number of nodes allocated beyond bucket headers.
func (t *Table) OverflowNodes() uint64 { return t.numNodes }

// MaxChain returns the longest bucket chain (in nodes).
func (t *Table) MaxChain() int { return t.maxChain }

// AvgNodesPerBucket returns the average chain length over occupied buckets.
func (t *Table) AvgNodesPerBucket() float64 {
	occupied := uint64(0)
	for b := uint64(0); b < t.buckets; b++ {
		if t.chainLength(b) > 0 {
			occupied++
		}
	}
	if occupied == 0 {
		return 0
	}
	return float64(t.chainTotal) / float64(occupied)
}

// FootprintBytes returns the index's resident working set: bucket headers,
// allocated overflow nodes and (for the indirect layout) the key column.
// This is the quantity that decides whether a query's index is L1-resident,
// LLC-resident or memory-resident — the axis of Figures 8 and 9.
func (t *Table) FootprintBytes() uint64 {
	total := t.buckets*t.nodeSize + t.numNodes*t.nodeSize
	if t.cfg.Layout == LayoutIndirect {
		total += t.numKeys * 8
	}
	return total
}
