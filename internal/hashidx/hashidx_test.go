package hashidx

import (
	"testing"
	"testing/quick"

	"widx/internal/stats"
	"widx/internal/vm"
)

func TestHashFunctions(t *testing.T) {
	// Listing 1 semantics: masked then XORed.
	if got := SimpleHash(0x1234_5678_9ABC_DEF0); got != ((0x1234_5678_9ABC_DEF0 & SimpleMask) ^ SimplePrime) {
		t.Fatalf("SimpleHash = %#x", got)
	}
	// Robust hash must actually mix: flipping one input bit should change
	// many output bits on average.
	a := RobustHash(1)
	b := RobustHash(2)
	if a == b {
		t.Fatal("robust hash collides trivially")
	}
	diff := 0
	x := a ^ b
	for x != 0 {
		diff += int(x & 1)
		x >>= 1
	}
	if diff < 10 {
		t.Fatalf("robust hash avalanche too weak: %d differing bits", diff)
	}
	if HashOf(HashSimple, 7) != SimpleHash(7) || HashOf(HashRobust, 7) != RobustHash(7) {
		t.Fatal("HashOf dispatch wrong")
	}
	if HashOps(HashSimple) >= HashOps(HashRobust) {
		t.Fatal("robust hash should cost more ALU ops than the simple hash")
	}
	if HashSimple.String() != "simple" || HashRobust.String() != "robust" {
		t.Fatal("hash kind names wrong")
	}
	if BucketIndex(0xFF, 16) != 0xF {
		t.Fatal("BucketIndex wrong")
	}
}

func TestRobustHashDistribution(t *testing.T) {
	// Sequential keys must spread across buckets roughly uniformly.
	const buckets = 256
	counts := make([]int, buckets)
	const n = 256 * 100
	for i := 0; i < n; i++ {
		counts[BucketIndex(RobustHash(uint64(i)), buckets)]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty after %d uniform inserts", b, n)
		}
		if c > 4*n/buckets {
			t.Fatalf("bucket %d grossly overloaded: %d", b, c)
		}
	}
}

func TestLayoutStrings(t *testing.T) {
	if LayoutInline.String() != "inline" || LayoutIndirect.String() != "indirect" {
		t.Fatal("layout names wrong")
	}
}

func buildTable(t *testing.T, layout Layout, hash HashKind, n int, buckets uint64) (*Table, []uint64) {
	t.Helper()
	as := vm.New()
	rng := stats.NewRNG(1234)
	keys := make([]uint64, n)
	seen := map[uint64]bool{}
	for i := range keys {
		for {
			k := rng.Uint64() >> 1 // keep clear of EmptyKey
			if k != 0 && !seen[k] {
				keys[i] = k
				seen[k] = true
				break
			}
		}
	}
	tbl, err := Build(as, Config{Layout: layout, Hash: hash, BucketCount: buckets, Name: "t"}, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, keys
}

func TestBuildAndProbeInline(t *testing.T) {
	tbl, keys := buildTable(t, LayoutInline, HashRobust, 1000, 0)
	if tbl.NumKeys() != 1000 {
		t.Fatalf("NumKeys = %d", tbl.NumKeys())
	}
	for i, k := range keys {
		r := tbl.Probe(k)
		if !r.Found {
			t.Fatalf("key %d not found", i)
		}
		if r.Payload != uint64(i) {
			t.Fatalf("key %d payload = %d", i, r.Payload)
		}
		if r.Matches != 1 {
			t.Fatalf("key %d matches = %d", i, r.Matches)
		}
	}
	// A key that was never inserted must not be found.
	if tbl.Probe(0xDEAD).Found {
		t.Fatal("found a key that was never inserted")
	}
}

func TestBuildAndProbeIndirect(t *testing.T) {
	tbl, keys := buildTable(t, LayoutIndirect, HashRobust, 1000, 0)
	for i, k := range keys {
		r := tbl.Probe(k)
		if !r.Found || r.Payload != uint64(i) {
			t.Fatalf("key %d: found=%v payload=%d", i, r.Found, r.Payload)
		}
		// Indirect probes must include key-fetch accesses in their traces.
		hasFetch := false
		for _, s := range r.Trace.Steps {
			if s.KeyFetchAddr != 0 {
				hasFetch = true
			}
		}
		if !hasFetch {
			t.Fatal("indirect probe trace has no key fetch")
		}
	}
	if tbl.KeyColumnBase() == 0 {
		t.Fatal("indirect table should have a key column")
	}
}

func TestExplicitPayloads(t *testing.T) {
	as := vm.New()
	keys := []uint64{10, 20, 30}
	payloads := []uint64{111, 222, 333}
	tbl, err := Build(as, Config{Layout: LayoutInline, Hash: HashSimple, Name: "p"}, keys, payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if r := tbl.Probe(k); !r.Found || r.Payload != payloads[i] {
			t.Fatalf("key %d: %+v", k, r)
		}
	}
}

func TestDuplicateKeysAllMatch(t *testing.T) {
	as := vm.New()
	keys := []uint64{42, 42, 42, 7}
	tbl, err := Build(as, Config{Layout: LayoutInline, Hash: HashRobust, BucketCount: 4, Name: "d"}, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := tbl.Probe(42)
	if !r.Found || r.Matches != 3 {
		t.Fatalf("duplicate probe: %+v", r)
	}
}

func TestBuildErrors(t *testing.T) {
	as := vm.New()
	if _, err := Build(nil, Config{}, []uint64{1}, nil); err == nil {
		t.Fatal("nil address space accepted")
	}
	if _, err := Build(as, Config{}, nil, nil); err == nil {
		t.Fatal("empty key set accepted")
	}
	if _, err := Build(as, Config{}, []uint64{1, 2}, []uint64{1}); err == nil {
		t.Fatal("mismatched payloads accepted")
	}
	if _, err := Build(as, Config{BucketCount: 3}, []uint64{1, 2}, nil); err == nil {
		t.Fatal("non-power-of-two bucket count accepted")
	}
	if _, err := Build(as, Config{}, []uint64{EmptyKey}, nil); err == nil {
		t.Fatal("reserved key accepted")
	}
	if _, err := Build(as, Config{Layout: Layout(9)}, []uint64{1}, nil); err == nil {
		t.Fatal("unknown layout accepted")
	}
}

func TestChainStatsSmallBucketCount(t *testing.T) {
	// Forcing 4 buckets over 64 keys guarantees chains of ~16 nodes.
	tbl, _ := buildTable(t, LayoutInline, HashRobust, 64, 4)
	if tbl.MaxChain() < 8 {
		t.Fatalf("max chain = %d, expected long chains with 4 buckets", tbl.MaxChain())
	}
	if avg := tbl.AvgNodesPerBucket(); avg < 8 || avg > 32 {
		t.Fatalf("avg nodes/bucket = %v", avg)
	}
	if tbl.OverflowNodes() != 64-4 {
		t.Fatalf("overflow nodes = %d, want 60", tbl.OverflowNodes())
	}
}

func TestProbeTraceShape(t *testing.T) {
	tbl, keys := buildTable(t, LayoutInline, HashSimple, 256, 256)
	r := tbl.ProbeFrom(keys[0], 0x7000)
	if r.Trace.KeyAddr != 0x7000 {
		t.Fatal("ProbeFrom did not record the key address")
	}
	if r.Trace.HashOps != HashOps(HashSimple) {
		t.Fatal("trace hash ops wrong")
	}
	if r.Trace.BucketAddr != tbl.BucketAddr(BucketIndex(SimpleHash(keys[0]), tbl.Buckets())) {
		t.Fatal("trace bucket address wrong")
	}
	if len(r.Trace.Steps) != r.NodesVisited {
		t.Fatal("trace steps inconsistent with nodes visited")
	}
	// MemOps = key fetch + node loads (+ indirect fetches, none here).
	if got := r.Trace.MemOps(); got != r.NodesVisited+1 {
		t.Fatalf("MemOps = %d, want %d", got, r.NodesVisited+1)
	}
}

func TestProbeEmptyBucket(t *testing.T) {
	as := vm.New()
	tbl, err := Build(as, Config{Layout: LayoutInline, Hash: HashRobust, BucketCount: 1024, Name: "e"}, []uint64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find a key whose bucket is guaranteed empty: try candidates until the
	// bucket differs from key 5's bucket and the probe visits one node.
	target := BucketIndex(RobustHash(5), tbl.Buckets())
	for k := uint64(100); k < 200; k++ {
		if BucketIndex(RobustHash(k), tbl.Buckets()) != target {
			r := tbl.Probe(k)
			if r.Found {
				t.Fatal("empty bucket probe found a match")
			}
			if r.NodesVisited != 1 {
				t.Fatalf("empty bucket should visit exactly the header, got %d", r.NodesVisited)
			}
			return
		}
	}
	t.Fatal("could not find a key mapping to a different bucket")
}

func TestBulkProbeAndMisses(t *testing.T) {
	tbl, keys := buildTable(t, LayoutInline, HashRobust, 500, 0)
	probe := append([]uint64{}, keys[:250]...)
	// Add 250 keys that are (almost surely) not present.
	for i := 0; i < 250; i++ {
		probe = append(probe, uint64(1_000_000_000+i))
	}
	found := tbl.BulkProbe(probe)
	if found < 250 || found > 255 {
		t.Fatalf("BulkProbe found %d, want ~250", found)
	}
}

func TestInterleavedProbeMatchesBulkProbe(t *testing.T) {
	for _, layout := range []Layout{LayoutInline, LayoutIndirect} {
		tbl, keys := buildTable(t, layout, HashRobust, 800, 256)
		probes := append([]uint64{}, keys...)
		probes = append(probes, 0xABCDEF, 0x123456) // misses
		want := tbl.BulkProbe(probes)
		for _, width := range []int{0, 1, 2, 4, 8} {
			steps := 0
			got := tbl.InterleavedProbe(probes, width, func(slot int, s TraceStep) {
				if s.NodeAddr == 0 {
					t.Fatal("step with zero node address")
				}
				steps++
			})
			if got != want {
				t.Fatalf("layout=%v width=%d: interleaved found %d, bulk found %d", layout, width, got, want)
			}
			if steps == 0 {
				t.Fatal("no steps observed")
			}
		}
	}
}

func TestFootprintTracksLayout(t *testing.T) {
	inline, _ := buildTable(t, LayoutInline, HashRobust, 1024, 1024)
	indirect, _ := buildTable(t, LayoutIndirect, HashRobust, 1024, 1024)
	if inline.FootprintBytes() == 0 || indirect.FootprintBytes() == 0 {
		t.Fatal("zero footprint")
	}
	// The indirect layout adds the key column but has smaller nodes.
	if indirect.NodeSize() >= inline.NodeSize() {
		t.Fatal("indirect nodes should be smaller than inline nodes")
	}
}

// Property: every inserted key is found with its own payload, for arbitrary
// key sets, both layouts and both hash functions.
func TestPropertyBuildProbeRoundTrip(t *testing.T) {
	f := func(rawKeys []uint32, layoutRaw, hashRaw uint8) bool {
		if len(rawKeys) == 0 {
			return true
		}
		if len(rawKeys) > 300 {
			rawKeys = rawKeys[:300]
		}
		// Deduplicate and avoid 0/EmptyKey.
		seen := map[uint64]bool{}
		var keys []uint64
		for _, rk := range rawKeys {
			k := uint64(rk) + 1
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		as := vm.New()
		cfg := Config{
			Layout: Layout(layoutRaw % 2),
			Hash:   HashKind(hashRaw % 2),
			Name:   "prop",
		}
		tbl, err := Build(as, cfg, keys, nil)
		if err != nil {
			return false
		}
		for i, k := range keys {
			r := tbl.Probe(k)
			if !r.Found || r.Payload != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of nodes visited by a probe never exceeds the longest
// chain in the table, and traces are internally consistent.
func TestPropertyProbeBounded(t *testing.T) {
	tbl, keys := buildTable(t, LayoutInline, HashSimple, 400, 64)
	f := func(pick uint16) bool {
		k := keys[int(pick)%len(keys)]
		r := tbl.Probe(k)
		if r.NodesVisited > tbl.MaxChain() {
			return false
		}
		return len(r.Trace.Steps) == r.NodesVisited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestProbeMatchesMirrorsWalkerEmission cross-checks the per-probe
// reference match stream against Probe's functional result: match counts
// agree, the inline layout reports payloads, and the indirect layout
// reports the raw base-column references the walker program emits (whose
// row-id conversion must equal Probe's Payload).
func TestProbeMatchesMirrorsWalkerEmission(t *testing.T) {
	t.Run("inline", func(t *testing.T) {
		tbl, keys := buildTable(t, LayoutInline, HashRobust, 500, 64)
		for i, k := range keys {
			ms := tbl.ProbeMatches(k)
			r := tbl.Probe(k)
			if len(ms) != r.Matches {
				t.Fatalf("key %d: %d matches, Probe says %d", i, len(ms), r.Matches)
			}
			if r.Found && ms[0] != r.Payload {
				t.Fatalf("key %d: first match %d, Probe payload %d", i, ms[0], r.Payload)
			}
		}
		if got := tbl.ProbeMatches(0xDEAD); got != nil {
			t.Fatalf("absent key matched %v", got)
		}
	})
	t.Run("inline duplicates", func(t *testing.T) {
		as := vm.New()
		keys := []uint64{7, 7, 7, 9}
		tbl, err := Build(as, Config{Layout: LayoutInline, Hash: HashRobust, BucketCount: 4, Name: "dup"}, keys, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := tbl.ProbeMatches(7); len(got) != 3 {
			t.Fatalf("duplicate key matched %v, want 3 payloads", got)
		}
	})
	t.Run("indirect", func(t *testing.T) {
		tbl, keys := buildTable(t, LayoutIndirect, HashRobust, 500, 64)
		for i, k := range keys {
			ms := tbl.ProbeMatches(k)
			r := tbl.Probe(k)
			if len(ms) != r.Matches {
				t.Fatalf("key %d: %d matches, Probe says %d", i, len(ms), r.Matches)
			}
			if r.Found {
				if rowid := (ms[0] - tbl.KeyColumnBase()) / 8; rowid != r.Payload {
					t.Fatalf("key %d: ref %#x -> rowid %d, Probe payload %d", i, ms[0], rowid, r.Payload)
				}
			}
		}
		if got := tbl.ProbeMatches(0xDEAD); got != nil {
			t.Fatalf("absent key matched %v", got)
		}
	})
}
