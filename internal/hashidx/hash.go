// Package hashidx implements the database hash index that Widx accelerates:
// a bucket array of header nodes with chained overflow nodes, laid out in the
// simulated virtual address space (internal/vm) so that the timing models see
// realistic cache and TLB behaviour.
//
// Two node layouts are supported, mirroring the two systems the paper
// evaluates:
//
//   - LayoutInline: each node stores the key and payload inline
//     (the optimized hash-join kernel of Section 5).
//   - LayoutIndirect: each node stores a pointer to the original table entry
//     and the key must be fetched from the base column, trading space for an
//     extra memory access (the MonetDB layout described in Section 2.2).
//
// Two hash functions are provided: the kernel's trivial masked XOR and a
// robust multi-constant xorshift-add function representative of production
// hashing. Both are expressible in the Widx ISA (Table 1 has no multiply),
// and internal/program generates dispatcher programs that compute exactly
// these functions so the accelerator and the software index agree bit for bit.
package hashidx

// HashKind selects the key-hashing function used by the index.
type HashKind uint8

const (
	// HashSimple is the hash-join kernel's hash: a mask and an XOR with a
	// prime-ish constant (Listing 1 of the paper). Two ALU operations; it
	// barely benefits from decoupled hashing.
	HashSimple HashKind = iota
	// HashRobust is a multi-constant xorshift-add finalizer representative
	// of the robust hash functions real DBMSs use to balance buckets. About
	// ten ALU operations; decoupling it from the walk pays off.
	HashRobust
)

// String names the hash kind.
func (k HashKind) String() string {
	switch k {
	case HashSimple:
		return "simple"
	case HashRobust:
		return "robust"
	default:
		return "hash(?)"
	}
}

// Hash constants. HPrime matches the spirit of Listing 1's 0xBIG placeholder;
// the robust constants are the splitmix64 increments, chosen because they are
// well-studied odd constants (the function itself avoids multiplication so it
// maps directly onto the Widx ISA).
const (
	SimpleMask   = 0xFFFF_FFFF
	SimplePrime  = 0xB1C9_51E7
	RobustConstA = 0x9E3779B97F4A7C15
	RobustConstB = 0xBF58476D1CE4E5B9
	RobustConstC = 0x94D049BB133111EB
)

// SimpleHash is the kernel hash of Listing 1: HASH(X) = ((X) & MASK) ^ HPRIME.
func SimpleHash(key uint64) uint64 {
	return (key & SimpleMask) ^ SimplePrime
}

// simpleHashOps is the ALU operation count of SimpleHash (AND, XOR), used by
// the analytical model and the baseline core's timing.
const simpleHashOps = 2

// RobustHash is a multiply-free finalizer: alternating xor-shift and add
// steps with three large odd constants. Every step is a single Widx
// instruction (XOR-SHF or ADD), so the dispatcher program and this function
// compute identical values.
func RobustHash(key uint64) uint64 {
	h := key
	h ^= h >> 30
	h += RobustConstA
	h ^= h >> 27
	h += RobustConstB
	h ^= h << 13
	h += RobustConstC
	h ^= h >> 31
	h += RobustConstA
	h ^= h << 7
	h ^= h >> 17
	return h
}

// robustHashOps is the ALU operation count of RobustHash when lowered to the
// Widx ISA (each xor-shift pair is one fused instruction, each add is one).
const robustHashOps = 10

// HashOf applies the selected hash function.
func HashOf(kind HashKind, key uint64) uint64 {
	if kind == HashRobust {
		return RobustHash(key)
	}
	return SimpleHash(key)
}

// HashOps returns the number of ALU operations the hash costs on a 1-IPC
// machine, used by the analytical model and the core timing models.
func HashOps(kind HashKind) int {
	if kind == HashRobust {
		return robustHashOps
	}
	return simpleHashOps
}

// BucketIndex reduces a hash value to a bucket index for a power-of-two
// bucket count.
func BucketIndex(hash, buckets uint64) uint64 {
	return hash & (buckets - 1)
}
