package hashidx

// Probing.
//
// Probe is the functional reference implementation of the index lookup
// (Listing 1 of the paper): hash the key, walk the bucket's node list,
// report matches. Besides the functional answer it records a ProbeTrace —
// the dependent memory accesses and the ALU work on the critical path —
// which the baseline core timing models (internal/cores) replay against the
// memory hierarchy. The Widx model does not use traces; its units execute
// real ISA programs against the same address space, and tests cross-check
// that both agree.

// TraceStep is one node visit on the probe's critical path.
type TraceStep struct {
	// NodeAddr is the address of the node (bucket header or overflow node).
	NodeAddr uint64
	// KeyFetchAddr is the address of the indirect key fetch issued after the
	// node load (zero for the inline layout, where the key is in the node).
	KeyFetchAddr uint64
	// CompareOps is the ALU work at this node: key comparison plus, for the
	// indirect layout, the extra address arithmetic the paper attributes to
	// MonetDB's complex hash table layout.
	CompareOps int
	// Matched reports whether this node's key equalled the probe key.
	Matched bool
}

// ProbeTrace is the per-probe record used by core timing models.
type ProbeTrace struct {
	// Key is the probed key.
	Key uint64
	// KeyAddr is the address the key was read from in the probe-side input
	// column (zero when the key was supplied directly).
	KeyAddr uint64
	// HashOps is the ALU operation count of hashing the key.
	HashOps int
	// BucketAddr is the bucket header address the hash selected.
	BucketAddr uint64
	// Steps are the dependent node visits, in traversal order.
	Steps []TraceStep
}

// MemOps returns the number of memory operations on the probe's critical
// path, including the key fetch from the input column if present.
func (tr ProbeTrace) MemOps() int {
	n := len(tr.Steps)
	for _, s := range tr.Steps {
		if s.KeyFetchAddr != 0 {
			n++
		}
	}
	if tr.KeyAddr != 0 {
		n++
	}
	return n
}

// ProbeResult is the functional outcome of one probe.
type ProbeResult struct {
	// Found reports whether at least one node matched.
	Found bool
	// Payload is the first matching node's payload (inline layout) or row id
	// (indirect layout).
	Payload uint64
	// Matches is the total number of matching nodes.
	Matches int
	// NodesVisited is the chain length traversed.
	NodesVisited int
	// Trace is the timing-model trace of this probe.
	Trace ProbeTrace
}

// indirectAddrOps is the extra address-calculation work per node for the
// indirect layout (computing the base-column address from the stored
// reference), which the paper calls out as the reason MonetDB's computation
// share is higher than the kernel's.
const indirectAddrOps = 2

// Probe looks key up in the table and returns the functional result together
// with the memory-access trace of the lookup.
func (t *Table) Probe(key uint64) ProbeResult {
	return t.probe(key, 0)
}

// ProbeFrom behaves like Probe but records keyAddr as the address the key was
// loaded from (the probe-side input column), so the trace charges the key
// fetch to the memory system as well.
func (t *Table) ProbeFrom(key uint64, keyAddr uint64) ProbeResult {
	return t.probe(key, keyAddr)
}

func (t *Table) probe(key uint64, keyAddr uint64) ProbeResult {
	idx := BucketIndex(HashOf(t.cfg.Hash, key), t.buckets)
	head := t.bucketBase + idx*t.nodeSize

	res := ProbeResult{
		Trace: ProbeTrace{
			Key:        key,
			KeyAddr:    keyAddr,
			HashOps:    HashOps(t.cfg.Hash),
			BucketAddr: head,
		},
	}

	switch t.cfg.Layout {
	case LayoutInline:
		node := head
		first := true
		for node != 0 {
			nodeKey := t.as.Read64(node + InlineKeyOffset)
			if first && nodeKey == EmptyKey {
				// Empty bucket: the header load still happened.
				res.Trace.Steps = append(res.Trace.Steps, TraceStep{NodeAddr: node, CompareOps: 1})
				res.NodesVisited = 1
				return res
			}
			matched := nodeKey == key
			res.Trace.Steps = append(res.Trace.Steps, TraceStep{
				NodeAddr:   node,
				CompareOps: 1,
				Matched:    matched,
			})
			res.NodesVisited++
			if matched {
				if !res.Found {
					res.Payload = t.as.Read64(node + InlinePayloadOffset)
					res.Found = true
				}
				res.Matches++
			}
			node = t.as.Read64(node + InlineNextOffset)
			first = false
		}
		return res

	default: // LayoutIndirect
		node := head
		for node != 0 {
			ref := t.as.Read64(node + IndirectRefOffset)
			if ref == 0 {
				// Empty bucket header.
				res.Trace.Steps = append(res.Trace.Steps, TraceStep{NodeAddr: node, CompareOps: 1})
				res.NodesVisited = 1
				return res
			}
			nodeKey := t.as.Read64(ref)
			matched := nodeKey == key
			res.Trace.Steps = append(res.Trace.Steps, TraceStep{
				NodeAddr:     node,
				KeyFetchAddr: ref,
				CompareOps:   1 + indirectAddrOps,
				Matched:      matched,
			})
			res.NodesVisited++
			if matched {
				if !res.Found {
					res.Payload = (ref - t.keyColBase) / 8
					res.Found = true
				}
				res.Matches++
			}
			node = t.as.Read64(node + IndirectNextOffset)
		}
		return res
	}
}

// ProbeMatches returns the values a Widx walker emits for key, in
// traversal order: the payload of every matching node for the inline
// layout, and the raw base-column reference for the indirect layout (the
// walker emits the reference itself; row-id conversion is the host's
// post-processing, see ProbeResult.Payload). It is the per-probe software
// reference the sampled simulator substitutes for fast-forwarded probes
// when checking that a sampled run's combined match stream is bit-identical
// to the full reference.
func (t *Table) ProbeMatches(key uint64) []uint64 {
	idx := BucketIndex(HashOf(t.cfg.Hash, key), t.buckets)
	node := t.bucketBase + idx*t.nodeSize
	var out []uint64
	switch t.cfg.Layout {
	case LayoutInline:
		first := true
		for node != 0 {
			nodeKey := t.as.Read64(node + InlineKeyOffset)
			if first && nodeKey == EmptyKey {
				return nil
			}
			if nodeKey == key {
				out = append(out, t.as.Read64(node+InlinePayloadOffset))
			}
			node = t.as.Read64(node + InlineNextOffset)
			first = false
		}
	default: // LayoutIndirect
		for node != 0 {
			ref := t.as.Read64(node + IndirectRefOffset)
			if ref == 0 {
				return nil
			}
			if t.as.Read64(ref) == key {
				out = append(out, ref)
			}
			node = t.as.Read64(node + IndirectNextOffset)
		}
	}
	return out
}

// BulkProbe probes every key in keys and returns the number of keys that
// found at least one match. It exists for functional tests and examples; the
// timing models drive probes one at a time so they can interleave them.
func (t *Table) BulkProbe(keys []uint64) (found int) {
	for _, k := range keys {
		if t.Probe(k).Found {
			found++
		}
	}
	return found
}

// InterleavedProbe is the software analogue of Widx's parallel walkers: it
// processes groups of `width` probes in a round-robin, state-machine fashion
// (the AMAC / group-prefetching style), advancing each in-flight probe by one
// node visit per turn. Functionally it returns the same match count as
// BulkProbe; its purpose is to expose inter-key parallelism to timing models
// and to serve as the software baseline for the ablation benchmarks.
//
// The onStep callback, if non-nil, is invoked for every node visit in
// interleaved order with the in-flight slot index, so a timing model can
// issue the corresponding memory accesses with overlapping lifetimes.
func (t *Table) InterleavedProbe(keys []uint64, width int, onStep func(slot int, step TraceStep)) (found int) {
	if width <= 0 {
		width = 1
	}
	type slotState struct {
		active  bool
		key     uint64
		node    uint64
		matched bool
	}
	slots := make([]slotState, width)
	next := 0

	refill := func(s *slotState) bool {
		if next >= len(keys) {
			s.active = false
			return false
		}
		key := keys[next]
		next++
		idx := BucketIndex(HashOf(t.cfg.Hash, key), t.buckets)
		*s = slotState{active: true, key: key, node: t.bucketAddrChecked(idx)}
		return true
	}

	for i := range slots {
		if !refill(&slots[i]) {
			break
		}
	}

	active := 0
	for i := range slots {
		if slots[i].active {
			active++
		}
	}
	for active > 0 {
		for i := range slots {
			s := &slots[i]
			if !s.active {
				continue
			}
			done, step := t.advance(s.node, s.key)
			if onStep != nil {
				onStep(i, step)
			}
			if step.Matched && !s.matched {
				s.matched = true
				found++
			}
			if done {
				if !refill(s) {
					active--
				}
				continue
			}
			s.node = t.nextNode(s.node)
		}
	}
	return found
}

// bucketAddrChecked returns the bucket header address for an index already
// reduced by the bucket mask.
func (t *Table) bucketAddrChecked(idx uint64) uint64 {
	return t.bucketBase + idx*t.nodeSize
}

// advance performs one node visit for the interleaved prober and reports
// whether the chain ends at this node.
func (t *Table) advance(node, key uint64) (done bool, step TraceStep) {
	switch t.cfg.Layout {
	case LayoutInline:
		nodeKey := t.as.Read64(node + InlineKeyOffset)
		step = TraceStep{NodeAddr: node, CompareOps: 1, Matched: nodeKey == key && nodeKey != EmptyKey}
		return t.as.Read64(node+InlineNextOffset) == 0, step
	default:
		ref := t.as.Read64(node + IndirectRefOffset)
		if ref == 0 {
			return true, TraceStep{NodeAddr: node, CompareOps: 1}
		}
		nodeKey := t.as.Read64(ref)
		step = TraceStep{NodeAddr: node, KeyFetchAddr: ref, CompareOps: 1 + indirectAddrOps, Matched: nodeKey == key}
		return t.as.Read64(node+IndirectNextOffset) == 0, step
	}
}

// nextNode returns the next node in the chain (zero at the end).
func (t *Table) nextNode(node uint64) uint64 {
	if t.cfg.Layout == LayoutInline {
		return t.as.Read64(node + InlineNextOffset)
	}
	return t.as.Read64(node + IndirectNextOffset)
}
