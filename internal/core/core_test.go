package core

import (
	"testing"

	"widx/internal/mem"
	"widx/internal/stats"
)

func testKeys(n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	keys := make([]uint64, n)
	seen := map[uint64]bool{}
	for i := range keys {
		for {
			k := rng.Uint64()>>1 + 1
			if !seen[k] {
				keys[i] = k
				seen[k] = true
				break
			}
		}
	}
	return keys
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.AddressSpace() == nil {
		t.Fatal("no address space")
	}
	bad := mem.DefaultConfig()
	bad.L1Ports = 0
	if _, err := NewSystem(Options{Memory: bad}); err == nil {
		t.Fatal("invalid memory config accepted")
	}
}

func TestBuildIndexAndLookup(t *testing.T) {
	sys, err := NewSystem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000, 1)
	payloads := make([]uint64, len(keys))
	for i := range payloads {
		payloads[i] = uint64(i) * 3
	}
	ix, err := sys.BuildIndex(IndexSpec{Keys: keys, Payloads: payloads, Layout: LayoutInline, Hash: HashRobust})
	if err != nil {
		t.Fatal(err)
	}
	if ix.FootprintBytes() == 0 || ix.Buckets() == 0 || ix.AvgNodesPerBucket() <= 0 {
		t.Fatal("index metadata empty")
	}
	if ix.Programs() == nil {
		t.Fatal("no generated programs")
	}
	for i, k := range keys[:100] {
		p, ok := ix.Lookup(k)
		if !ok || p != payloads[i] {
			t.Fatalf("Lookup(%d) = %d,%v", k, p, ok)
		}
	}
	if _, ok := ix.Lookup(0xFFFF_0000_FFFF); ok {
		t.Fatal("found a missing key")
	}
	if _, err := sys.BuildIndex(IndexSpec{}); err == nil {
		t.Fatal("empty index accepted")
	}
}

func TestProbeDesignsAgreeFunctionally(t *testing.T) {
	sys, err := NewSystem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(3000, 2)
	ix, err := sys.BuildIndex(IndexSpec{Keys: keys, Layout: LayoutIndirect, Hash: HashRobust})
	if err != nil {
		t.Fatal(err)
	}
	probes := append(append([]uint64{}, keys[:500]...), 1, 2, 3) // 3 misses

	var matchCounts []int
	for _, d := range []Design{OoO(), InOrder(), Widx(2), Widx(4)} {
		r, err := sys.Probe(ix, ProbeRequest{Keys: probes, Design: d})
		if err != nil {
			t.Fatal(err)
		}
		if r.Probes != len(probes) {
			t.Fatalf("%v: probe count wrong", d)
		}
		if r.Cycles == 0 || r.CyclesPerTuple <= 0 || r.EnergyJ <= 0 {
			t.Fatalf("%v: empty timing/energy", d)
		}
		matchCounts = append(matchCounts, r.Matches)
		if d.Kind == DesignWidx && r.WalkerBreakdown == nil {
			t.Fatalf("%v: missing walker breakdown", d)
		}
		if d.Kind != DesignWidx && r.WalkerBreakdown != nil {
			t.Fatalf("%v: unexpected walker breakdown", d)
		}
	}
	for i := 1; i < len(matchCounts); i++ {
		if matchCounts[i] != matchCounts[0] {
			t.Fatalf("designs disagree on matches: %v", matchCounts)
		}
	}
	if matchCounts[0] != 500 {
		t.Fatalf("matches = %d, want 500", matchCounts[0])
	}

	// Error paths.
	if _, err := sys.Probe(nil, ProbeRequest{Keys: probes}); err == nil {
		t.Fatal("nil index accepted")
	}
	if _, err := sys.Probe(ix, ProbeRequest{}); err == nil {
		t.Fatal("empty probe keys accepted")
	}
}

func TestWidxDefaultWalkers(t *testing.T) {
	sys, _ := NewSystem(Options{})
	keys := testKeys(500, 3)
	ix, err := sys.BuildIndex(IndexSpec{Keys: keys, Layout: LayoutInline, Hash: HashSimple})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Probe(ix, ProbeRequest{Keys: keys[:200], Design: Design{Kind: DesignWidx}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Matches != 200 {
		t.Fatalf("matches = %d", r.Matches)
	}
	if (Design{Kind: DesignWidx, Walkers: 4}).String() != "widx-4w" ||
		OoO().String() != "ooo" || InOrder().String() != "in-order" ||
		(Design{Kind: DesignKind(9)}).String() == "" {
		t.Fatal("design names wrong")
	}
}

func TestCompare(t *testing.T) {
	sys, _ := NewSystem(Options{})
	keys := testKeys(12000, 4)
	ix, err := sys.BuildIndex(IndexSpec{Keys: keys, Layout: LayoutInline, Hash: HashRobust})
	if err != nil {
		t.Fatal(err)
	}
	probes := testKeysFrom(keys, 4000, 5)
	cmp, err := sys.Compare(ix, probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != 5 {
		t.Fatalf("expected 5 designs, got %d", len(cmp.Results))
	}
	// The OoO baseline normalizes to 1.
	if cmp.IndexSpeedup["ooo"] != 1 {
		t.Fatal("baseline speedup should be 1")
	}
	// Widx with 4 walkers beats the baseline and fewer walkers.
	if cmp.IndexSpeedup["widx-4w"] <= 1 {
		t.Fatalf("widx-4w speedup = %v", cmp.IndexSpeedup["widx-4w"])
	}
	if cmp.IndexSpeedup["widx-4w"] <= cmp.IndexSpeedup["widx-1w"] {
		t.Fatal("more walkers should be faster")
	}
	// The in-order core is slower but saves energy; Widx saves energy too.
	if cmp.IndexSpeedup["in-order"] >= 1 {
		t.Fatalf("in-order should be slower than OoO: %v", cmp.IndexSpeedup["in-order"])
	}
	if cmp.EnergyReduction["in-order"] <= 0.5 || cmp.EnergyReduction["widx-4w"] <= 0.5 {
		t.Fatalf("energy reductions too small: %+v", cmp.EnergyReduction)
	}
}

// testKeysFrom draws n probe keys from the build keys.
func testKeysFrom(build []uint64, n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = build[rng.Intn(len(build))]
	}
	return out
}
