// Package core is the public facade of the Widx library: it ties the hash
// index, the Widx unit programs, the accelerator model, the baseline core
// models and the memory hierarchy together behind a small API that mirrors
// how the paper describes using Widx.
//
// The workflow is the one described in Sections 4.2 and 4.3 of the paper:
//
//  1. build a hash index over the build-side keys (NewSystem + BuildIndex),
//  2. generate (or hand-write) the dispatcher / walker / producer programs
//     for the index's schema — BuildIndex does this automatically for the
//     built-in layouts,
//  3. offload a bulk probe to the accelerator (Probe with a Widx design), or
//     run the same probes on a modelled baseline core, and
//  4. read back the matches and the timing/energy report (Compare).
//
// Everything runs inside a deterministic, simulated machine: the timing
// numbers are modelled cycles for the Table 2 configuration, not wall-clock
// time on the host.
package core

import (
	"fmt"

	"widx/internal/cores"
	"widx/internal/energy"
	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/vm"
	"widx/internal/widx"
)

// Layout re-exports the hash index node layouts.
type Layout = hashidx.Layout

// Hash re-exports the hash function kinds.
type Hash = hashidx.HashKind

// Re-exported enum values for the public API.
const (
	LayoutInline   = hashidx.LayoutInline
	LayoutIndirect = hashidx.LayoutIndirect
	HashSimple     = hashidx.HashSimple
	HashRobust     = hashidx.HashRobust
)

// Options configures a System.
type Options struct {
	// Memory is the memory hierarchy configuration; the zero value means
	// Table 2 (DefaultMemConfig).
	Memory mem.Config
}

// DefaultMemConfig returns the Table 2 memory hierarchy configuration.
func DefaultMemConfig() mem.Config { return mem.DefaultConfig() }

// System owns a simulated address space and the workload data placed in it.
// A System is not safe for concurrent use.
type System struct {
	opts Options
	as   *vm.AddressSpace
}

// NewSystem creates an empty system.
func NewSystem(opts Options) (*System, error) {
	if (opts.Memory == mem.Config{}) {
		opts.Memory = mem.DefaultConfig()
	}
	if err := opts.Memory.Validate(); err != nil {
		return nil, err
	}
	return &System{opts: opts, as: vm.New()}, nil
}

// AddressSpace exposes the simulated address space (examples use it to place
// auxiliary data such as custom result buffers).
func (s *System) AddressSpace() *vm.AddressSpace { return s.as }

// IndexSpec describes a hash index to build.
type IndexSpec struct {
	// Name labels the index's memory regions.
	Name string
	// Keys are the build-side keys; Payloads (optional) are stored with them
	// for the inline layout.
	Keys     []uint64
	Payloads []uint64
	// Layout and Hash select the node layout and hash function.
	Layout Layout
	Hash   Hash
	// BucketCount overrides the automatically sized bucket array
	// (0 = one bucket per key, rounded up to a power of two).
	BucketCount uint64
}

// Index is a built hash index together with the Widx programs for it.
type Index struct {
	table  *hashidx.Table
	bundle *program.Bundle
	// resultBase is the producer's output region.
	resultBase uint64
}

// FootprintBytes returns the index working-set size.
func (ix *Index) FootprintBytes() uint64 { return ix.table.FootprintBytes() }

// Buckets returns the bucket count.
func (ix *Index) Buckets() uint64 { return ix.table.Buckets() }

// AvgNodesPerBucket returns the average occupied-bucket chain depth.
func (ix *Index) AvgNodesPerBucket() float64 { return ix.table.AvgNodesPerBucket() }

// Programs returns the generated dispatcher, walker and producer programs
// (for inspection, disassembly or custom modification).
func (ix *Index) Programs() *program.Bundle { return ix.bundle }

// Lookup probes the index functionally (no timing) and returns the first
// matching payload.
func (ix *Index) Lookup(key uint64) (payload uint64, found bool) {
	r := ix.table.Probe(key)
	return r.Payload, r.Found
}

// BuildIndex builds a hash index in the system's address space and generates
// its Widx programs.
func (s *System) BuildIndex(spec IndexSpec) (*Index, error) {
	if spec.Name == "" {
		spec.Name = "index"
	}
	tbl, err := hashidx.Build(s.as, hashidx.Config{
		Layout:      spec.Layout,
		Hash:        spec.Hash,
		BucketCount: spec.BucketCount,
		Name:        spec.Name,
	}, spec.Keys, spec.Payloads)
	if err != nil {
		return nil, err
	}
	resultBase := s.as.AllocAligned(spec.Name+".results", uint64(len(spec.Keys))*16+4096)
	bundle, err := program.ForTable(tbl, resultBase)
	if err != nil {
		return nil, err
	}
	return &Index{table: tbl, bundle: bundle, resultBase: resultBase}, nil
}

// Design selects which machine executes a bulk probe.
type Design struct {
	// Kind selects the design family.
	Kind DesignKind
	// Walkers applies to the Widx design (1-4; Section 3.2 shows more is not
	// useful with practical cache budgets).
	Walkers int
}

// DesignKind enumerates the design families of the evaluation.
type DesignKind uint8

const (
	// DesignOoO is the Table 2 out-of-order baseline core.
	DesignOoO DesignKind = iota
	// DesignInOrder is the Cortex-A8-class in-order core.
	DesignInOrder
	// DesignWidx is the Widx accelerator attached to the (idle) OoO core.
	DesignWidx
)

// String names the design.
func (d Design) String() string {
	switch d.Kind {
	case DesignOoO:
		return "ooo"
	case DesignInOrder:
		return "in-order"
	case DesignWidx:
		return fmt.Sprintf("widx-%dw", d.Walkers)
	default:
		return "design(?)"
	}
}

// OoO returns the out-of-order baseline design.
func OoO() Design { return Design{Kind: DesignOoO} }

// InOrder returns the in-order comparison design.
func InOrder() Design { return Design{Kind: DesignInOrder} }

// Widx returns the accelerator design with the given walker count.
func Widx(walkers int) Design { return Design{Kind: DesignWidx, Walkers: walkers} }

// ProbeRequest is one bulk index probe.
type ProbeRequest struct {
	// Keys are the probe keys.
	Keys []uint64
	// Design selects the executing machine; the zero value is the OoO core.
	Design Design
}

// ProbeResult reports a bulk probe.
type ProbeResult struct {
	// Design is the machine that executed the probes.
	Design Design
	// Probes is the number of keys probed; Matches the number of matching
	// nodes found; Payloads the matched payloads in completion order.
	Probes   int
	Matches  int
	Payloads []uint64
	// Cycles is the modelled indexing time; CyclesPerTuple the per-probe
	// average; EnergyJ the modelled energy of the indexing phase.
	Cycles         uint64
	CyclesPerTuple float64
	EnergyJ        float64
	// WalkerBreakdown is only populated for the Widx design: per-tuple
	// cycles split into computation, memory, TLB and idle time.
	WalkerBreakdown *widx.Breakdown
}

// Probe executes the request against the index on a fresh memory hierarchy.
func (s *System) Probe(ix *Index, req ProbeRequest) (*ProbeResult, error) {
	if ix == nil {
		return nil, fmt.Errorf("core: nil index")
	}
	if len(req.Keys) == 0 {
		return nil, fmt.Errorf("core: no probe keys")
	}
	// Materialize the probe keys as an input column.
	keyBase := s.as.AllocAligned("probe.keys", uint64(len(req.Keys))*8)
	for i, k := range req.Keys {
		s.as.Write64(keyBase+uint64(i)*8, k)
	}
	hier := mem.NewHierarchy(s.opts.Memory)
	eng := energy.Default()

	res := &ProbeResult{Design: req.Design, Probes: len(req.Keys)}
	switch req.Design.Kind {
	case DesignOoO, DesignInOrder:
		cfg := cores.OoOConfig()
		if req.Design.Kind == DesignInOrder {
			cfg = cores.InOrderConfig()
		}
		c, err := cores.New(cfg, hier)
		if err != nil {
			return nil, err
		}
		traces := make([]hashidx.ProbeTrace, len(req.Keys))
		for i, k := range req.Keys {
			pr := ix.table.ProbeFrom(k, keyBase+uint64(i)*8)
			traces[i] = pr.Trace
			if pr.Found {
				res.Matches += pr.Matches
				res.Payloads = append(res.Payloads, pr.Payload)
			}
		}
		cr, err := c.RunProbes(traces, 0)
		if err != nil {
			return nil, err
		}
		res.Cycles = cr.TotalCycles
		res.CyclesPerTuple = cr.CyclesPerTuple()
		if req.Design.Kind == DesignInOrder {
			res.EnergyJ = eng.InOrder(float64(cr.TotalCycles)).EnergyJ
		} else {
			res.EnergyJ = eng.OoO(float64(cr.TotalCycles)).EnergyJ
		}
		return res, nil

	case DesignWidx:
		walkers := req.Design.Walkers
		if walkers == 0 {
			walkers = 4
		}
		acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: 2},
			hier, s.as, ix.bundle.Dispatcher, ix.bundle.Walker, ix.bundle.Producer)
		if err != nil {
			return nil, err
		}
		or, err := acc.Offload(widx.OffloadRequest{KeyBase: keyBase, KeyCount: uint64(len(req.Keys))})
		if err != nil {
			return nil, err
		}
		res.Matches = len(or.Matches)
		res.Payloads = translatePayloads(ix, or.Matches)
		res.Cycles = or.TotalCycles
		res.CyclesPerTuple = or.CyclesPerTuple()
		res.EnergyJ = eng.Widx(float64(or.TotalCycles)).EnergyJ
		bd := or.WalkerTotal
		res.WalkerBreakdown = &bd
		return res, nil

	default:
		return nil, fmt.Errorf("core: unknown design %v", req.Design)
	}
}

// translatePayloads converts walker-emitted payloads into the same payload
// domain the software probe reports (row identifiers for the indirect
// layout).
func translatePayloads(ix *Index, raw []uint64) []uint64 {
	if ix.table.Config().Layout != hashidx.LayoutIndirect {
		return append([]uint64(nil), raw...)
	}
	out := make([]uint64, len(raw))
	base := ix.table.KeyColumnBase()
	for i, r := range raw {
		out[i] = (r - base) / 8
	}
	return out
}

// Comparison is the side-by-side result of running the same probes on every
// design, the shape of the paper's headline evaluation.
type Comparison struct {
	Results map[string]*ProbeResult
	// IndexSpeedup is each design's speedup over the OoO baseline.
	IndexSpeedup map[string]float64
	// EnergyReduction is each design's energy saving relative to OoO.
	EnergyReduction map[string]float64
}

// Compare runs the probe keys on the OoO baseline, the in-order core and Widx
// with 1, 2 and 4 walkers.
func (s *System) Compare(ix *Index, keys []uint64) (*Comparison, error) {
	designs := []Design{OoO(), InOrder(), Widx(1), Widx(2), Widx(4)}
	cmp := &Comparison{
		Results:         map[string]*ProbeResult{},
		IndexSpeedup:    map[string]float64{},
		EnergyReduction: map[string]float64{},
	}
	for _, d := range designs {
		r, err := s.Probe(ix, ProbeRequest{Keys: keys, Design: d})
		if err != nil {
			return nil, err
		}
		cmp.Results[d.String()] = r
	}
	base := cmp.Results[OoO().String()]
	for name, r := range cmp.Results {
		cmp.IndexSpeedup[name] = float64(base.Cycles) / float64(r.Cycles)
		cmp.EnergyReduction[name] = 1 - r.EnergyJ/base.EnergyJ
	}
	return cmp, nil
}
