// Package core is the public facade of the Widx library: it ties the hash
// index, the Widx unit programs, the accelerator model, the baseline core
// models and the memory hierarchy together behind a small API that mirrors
// how the paper describes using Widx.
//
// The workflow is the one described in Sections 4.2 and 4.3 of the paper:
//
//  1. build a hash index over the build-side keys (NewSystem + BuildIndex),
//  2. generate (or hand-write) the dispatcher / walker / producer programs
//     for the index's schema — BuildIndex does this automatically for the
//     built-in layouts,
//  3. offload a bulk probe to the accelerator (Probe with a Widx design), or
//     run the same probes on a modelled baseline core, and
//  4. read back the matches and the timing/energy report (Compare).
//
// Since the system-API redesign, every probe runs on the shared-memory
// multi-agent simulation layer: a mem.SharedLevel (LLC, MSHR pool, memory
// bandwidth) with one or more agents attached, each owning a private L1 and
// TLB, driven by internal/system's event scheduler. Probe and Compare build
// a single-agent system — their results are identical to the pre-redesign
// facade — while ProbeShared co-schedules any mix of Widx accelerators and
// host cores on one hierarchy, the paper's CMP deployment (4 cores x Widx).
//
// Migration note: core.NewSystem, Probe and Compare are source-compatible
// with the previous facade; code that wants contention studies switches from
// Probe to ProbeShared with an AgentSpec per co-running agent.
//
// Everything runs inside a deterministic, simulated machine: the timing
// numbers are modelled cycles for the Table 2 configuration, not wall-clock
// time on the host.
package core

import (
	"fmt"

	"widx/internal/cores"
	"widx/internal/energy"
	"widx/internal/hashidx"
	"widx/internal/mem"
	"widx/internal/program"
	"widx/internal/system"
	"widx/internal/vm"
	"widx/internal/widx"
)

// Layout re-exports the hash index node layouts.
type Layout = hashidx.Layout

// Hash re-exports the hash function kinds.
type Hash = hashidx.HashKind

// Re-exported enum values for the public API.
const (
	LayoutInline   = hashidx.LayoutInline
	LayoutIndirect = hashidx.LayoutIndirect
	HashSimple     = hashidx.HashSimple
	HashRobust     = hashidx.HashRobust
)

// Options configures a System.
type Options struct {
	// Memory is the memory hierarchy configuration; the zero value means
	// Table 2 (DefaultMemConfig).
	Memory mem.Config
}

// DefaultMemConfig returns the Table 2 memory hierarchy configuration.
func DefaultMemConfig() mem.Config { return mem.DefaultConfig() }

// System owns a simulated address space and the workload data placed in it.
// A System is not safe for concurrent use.
type System struct {
	opts Options
	as   *vm.AddressSpace
}

// NewSystem creates an empty system.
func NewSystem(opts Options) (*System, error) {
	if (opts.Memory == mem.Config{}) {
		opts.Memory = mem.DefaultConfig()
	}
	if err := opts.Memory.Validate(); err != nil {
		return nil, err
	}
	return &System{opts: opts, as: vm.New()}, nil
}

// AddressSpace exposes the simulated address space (examples use it to place
// auxiliary data such as custom result buffers).
func (s *System) AddressSpace() *vm.AddressSpace { return s.as }

// IndexSpec describes a hash index to build.
type IndexSpec struct {
	// Name labels the index's memory regions.
	Name string
	// Keys are the build-side keys; Payloads (optional) are stored with them
	// for the inline layout.
	Keys     []uint64
	Payloads []uint64
	// Layout and Hash select the node layout and hash function.
	Layout Layout
	Hash   Hash
	// BucketCount overrides the automatically sized bucket array
	// (0 = one bucket per key, rounded up to a power of two).
	BucketCount uint64
}

// Index is a built hash index together with the Widx programs for it.
type Index struct {
	table  *hashidx.Table
	bundle *program.Bundle
	// resultBase is the producer's output region.
	resultBase uint64
}

// FootprintBytes returns the index working-set size.
func (ix *Index) FootprintBytes() uint64 { return ix.table.FootprintBytes() }

// Buckets returns the bucket count.
func (ix *Index) Buckets() uint64 { return ix.table.Buckets() }

// AvgNodesPerBucket returns the average occupied-bucket chain depth.
func (ix *Index) AvgNodesPerBucket() float64 { return ix.table.AvgNodesPerBucket() }

// Programs returns the generated dispatcher, walker and producer programs
// (for inspection, disassembly or custom modification).
func (ix *Index) Programs() *program.Bundle { return ix.bundle }

// Lookup probes the index functionally (no timing) and returns the first
// matching payload.
func (ix *Index) Lookup(key uint64) (payload uint64, found bool) {
	r := ix.table.Probe(key)
	return r.Payload, r.Found
}

// BuildIndex builds a hash index in the system's address space and generates
// its Widx programs.
func (s *System) BuildIndex(spec IndexSpec) (*Index, error) {
	if spec.Name == "" {
		spec.Name = "index"
	}
	tbl, err := hashidx.Build(s.as, hashidx.Config{
		Layout:      spec.Layout,
		Hash:        spec.Hash,
		BucketCount: spec.BucketCount,
		Name:        spec.Name,
	}, spec.Keys, spec.Payloads)
	if err != nil {
		return nil, err
	}
	resultBase := s.as.AllocAligned(spec.Name+".results", uint64(len(spec.Keys))*16+4096)
	bundle, err := program.ForTable(tbl, resultBase)
	if err != nil {
		return nil, err
	}
	return &Index{table: tbl, bundle: bundle, resultBase: resultBase}, nil
}

// Design selects which machine executes a bulk probe.
type Design struct {
	// Kind selects the design family.
	Kind DesignKind
	// Walkers applies to the Widx design (1-4; Section 3.2 shows more is not
	// useful with practical cache budgets).
	Walkers int
}

// DesignKind enumerates the design families of the evaluation.
type DesignKind uint8

const (
	// DesignOoO is the Table 2 out-of-order baseline core.
	DesignOoO DesignKind = iota
	// DesignInOrder is the Cortex-A8-class in-order core.
	DesignInOrder
	// DesignWidx is the Widx accelerator attached to the (idle) OoO core.
	DesignWidx
)

// String names the design.
func (d Design) String() string {
	switch d.Kind {
	case DesignOoO:
		return "ooo"
	case DesignInOrder:
		return "in-order"
	case DesignWidx:
		return fmt.Sprintf("widx-%dw", d.Walkers)
	default:
		return "design(?)"
	}
}

// OoO returns the out-of-order baseline design.
func OoO() Design { return Design{Kind: DesignOoO} }

// InOrder returns the in-order comparison design.
func InOrder() Design { return Design{Kind: DesignInOrder} }

// Widx returns the accelerator design with the given walker count.
func Widx(walkers int) Design { return Design{Kind: DesignWidx, Walkers: walkers} }

// ProbeRequest is one bulk index probe.
type ProbeRequest struct {
	// Keys are the probe keys.
	Keys []uint64
	// Design selects the executing machine; the zero value is the OoO core.
	Design Design
}

// ProbeResult reports a bulk probe.
type ProbeResult struct {
	// Design is the machine that executed the probes.
	Design Design
	// Probes is the number of keys probed; Matches the number of matching
	// nodes found; Payloads the matched payloads in completion order.
	Probes   int
	Matches  int
	Payloads []uint64
	// Cycles is the modelled indexing time; CyclesPerTuple the per-probe
	// average; EnergyJ the modelled energy of the indexing phase.
	Cycles         uint64
	CyclesPerTuple float64
	EnergyJ        float64
	// WalkerBreakdown is only populated for the Widx design: per-tuple
	// cycles split into computation, memory, TLB and idle time.
	WalkerBreakdown *widx.Breakdown
	// MemStats is the agent's own view of the memory-system activity during
	// the probe: in a shared run it attributes LLC misses, off-chip blocks
	// and MSHR stalls to this agent.
	MemStats mem.Stats
}

// agentRun couples a schedulable agent with the finisher that folds its
// engine-specific result into a ProbeResult once the system run completes.
type agentRun struct {
	agent  system.Agent
	finish func() (*ProbeResult, error)
}

// newAgentRun wires one design onto an agent view of a shared memory level:
// it builds the design's execution engine (a Widx offload or a core probe
// replay) over the key column at keyBase and returns it ready for the
// system scheduler.
func (s *System) newAgentRun(hier *mem.Hierarchy, ix *Index, bundle *program.Bundle,
	d Design, keys []uint64, keyBase uint64) (*agentRun, error) {
	eng := energy.Default()
	res := &ProbeResult{Design: d, Probes: len(keys)}
	switch d.Kind {
	case DesignOoO, DesignInOrder:
		cfg := cores.OoOConfig()
		if d.Kind == DesignInOrder {
			cfg = cores.InOrderConfig()
		}
		c, err := cores.New(cfg, hier)
		if err != nil {
			return nil, err
		}
		traces := make([]hashidx.ProbeTrace, len(keys))
		for i, k := range keys {
			pr := ix.table.ProbeFrom(k, keyBase+uint64(i)*8)
			traces[i] = pr.Trace
			if pr.Found {
				res.Matches += pr.Matches
				res.Payloads = append(res.Payloads, pr.Payload)
			}
		}
		pe, err := c.NewProbeEngine(traces, 0)
		if err != nil {
			return nil, err
		}
		return &agentRun{agent: pe, finish: func() (*ProbeResult, error) {
			cr, err := pe.Result()
			if err != nil {
				return nil, err
			}
			res.Cycles = cr.TotalCycles
			res.CyclesPerTuple = cr.CyclesPerTuple()
			res.MemStats = cr.MemStats
			if d.Kind == DesignInOrder {
				res.EnergyJ = eng.InOrder(float64(cr.TotalCycles)).EnergyJ
			} else {
				res.EnergyJ = eng.OoO(float64(cr.TotalCycles)).EnergyJ
			}
			return res, nil
		}}, nil

	case DesignWidx:
		walkers := d.Walkers
		if walkers == 0 {
			walkers = 4
		}
		acc, err := widx.New(widx.Config{NumWalkers: walkers, QueueDepth: 2},
			hier, s.as, bundle.Dispatcher, bundle.Walker, bundle.Producer)
		if err != nil {
			return nil, err
		}
		o, err := acc.StartOffload(widx.OffloadRequest{KeyBase: keyBase, KeyCount: uint64(len(keys))})
		if err != nil {
			return nil, err
		}
		return &agentRun{agent: o, finish: func() (*ProbeResult, error) {
			or, err := o.Result()
			if err != nil {
				return nil, err
			}
			res.Matches = len(or.Matches)
			res.Payloads = translatePayloads(ix, or.Matches)
			res.Cycles = or.TotalCycles
			res.CyclesPerTuple = or.CyclesPerTuple()
			res.EnergyJ = eng.Widx(float64(or.TotalCycles)).EnergyJ
			res.MemStats = or.MemStats
			bd := or.WalkerTotal
			res.WalkerBreakdown = &bd
			return res, nil
		}}, nil

	default:
		return nil, fmt.Errorf("core: unknown design %v", d)
	}
}

// Probe executes the request against the index on a fresh single-agent
// system: one agent view in front of a private shared level, driven by the
// system scheduler. Results are identical to the pre-system-API facade.
func (s *System) Probe(ix *Index, req ProbeRequest) (*ProbeResult, error) {
	if ix == nil {
		return nil, fmt.Errorf("core: nil index")
	}
	if len(req.Keys) == 0 {
		return nil, fmt.Errorf("core: no probe keys")
	}
	// Materialize the probe keys as an input column.
	keyBase := s.as.AllocAligned("probe.keys", uint64(len(req.Keys))*8)
	for i, k := range req.Keys {
		s.as.Write64(keyBase+uint64(i)*8, k)
	}
	top := s.opts.Memory.Topology()
	sl := mem.NewSharedLevel(top)
	run, err := s.newAgentRun(sl.NewAgent(top.Agent(req.Design.String())), ix, ix.bundle, req.Design, req.Keys, keyBase)
	if err != nil {
		return nil, err
	}
	if err := system.Run(run.agent); err != nil {
		return nil, err
	}
	return run.finish()
}

// AgentSpec names one agent of a shared-memory run.
type AgentSpec struct {
	// Name labels the agent's memory view and result rows; empty defaults
	// to "<design>.<index>".
	Name string
	// Design selects the agent's machine (Widx, OoO or in-order).
	Design Design
}

// SharedProbeRequest describes a co-scheduled multi-agent probe: agent i
// probes key stream Keys[i]. All agents start at cycle 0 and contend for
// one shared LLC, MSHR pool and memory-bandwidth schedule.
type SharedProbeRequest struct {
	Agents []AgentSpec
	Keys   [][]uint64
}

// AgentProbeResult is one agent's labeled outcome of a shared run. MemStats
// (inherited from ProbeResult) attributes the shared level's activity to
// this agent; the per-agent shared-resource counters sum to SharedStats.
type AgentProbeResult struct {
	Name string
	ProbeResult
}

// SharedProbeResult reports a co-scheduled multi-agent probe — the paper's
// CMP deployment, where several cores' indexing phases contend for the LLC
// and off-chip bandwidth.
type SharedProbeResult struct {
	// Agents holds the per-agent results in request order.
	Agents []AgentProbeResult
	// SystemCycles spans the run start to the last agent finishing.
	SystemCycles uint64
	// SharedStats is the shared level's own counters: LLC hits and misses,
	// combined misses, off-chip blocks and MSHR stalls accumulated across
	// every agent (the per-agent MemStats sum to these), plus the shared
	// pool's MSHR-occupancy histogram.
	SharedStats mem.Stats
	// MSHRSaturationShare is the fraction of accounted cycles the shared
	// MSHR pool was full; BandwidthUtilization the fraction of the
	// effective off-chip bandwidth consumed over the run.
	MSHRSaturationShare  float64
	BandwidthUtilization float64
}

// ProbeShared executes one probe stream per agent, co-scheduled on a single
// shared memory level by the system scheduler. With one agent it reduces to
// Probe; with several it is the contention experiment the ROADMAP's
// multi-accelerator item asks for.
func (s *System) ProbeShared(ix *Index, req SharedProbeRequest) (*SharedProbeResult, error) {
	if ix == nil {
		return nil, fmt.Errorf("core: nil index")
	}
	if len(req.Agents) == 0 {
		return nil, fmt.Errorf("core: shared probe needs at least one agent")
	}
	if len(req.Keys) != len(req.Agents) {
		return nil, fmt.Errorf("core: %d agents but %d key streams", len(req.Agents), len(req.Keys))
	}

	// Materialize every agent's inputs first, in request order, so memory
	// addresses (and with them cache and TLB behaviour) are fixed by the
	// request alone. Each Widx agent gets a private result region and a
	// program bundle pointing at it.
	names := make([]string, len(req.Agents))
	keyBases := make([]uint64, len(req.Agents))
	bundles := make([]*program.Bundle, len(req.Agents))
	for i, spec := range req.Agents {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("%s.%d", spec.Design, i)
		}
		names[i] = name
		keys := req.Keys[i]
		if len(keys) == 0 {
			return nil, fmt.Errorf("core: agent %q has no probe keys", name)
		}
		keyBases[i] = s.as.AllocAligned(name+".keys", uint64(len(keys))*8)
		for j, k := range keys {
			s.as.Write64(keyBases[i]+uint64(j)*8, k)
		}
		bundles[i] = ix.bundle
		if spec.Design.Kind == DesignWidx {
			resultBase := s.as.AllocAligned(name+".results", uint64(len(keys))*16+4096)
			b, err := program.ForTable(ix.table, resultBase)
			if err != nil {
				return nil, err
			}
			bundles[i] = b
		}
	}

	top := s.opts.Memory.Topology()
	sl := mem.NewSharedLevel(top)
	runs := make([]*agentRun, len(req.Agents))
	agents := make([]system.Agent, len(req.Agents))
	for i, spec := range req.Agents {
		run, err := s.newAgentRun(sl.NewAgent(top.Agent(names[i])), ix, bundles[i], spec.Design, req.Keys[i], keyBases[i])
		if err != nil {
			return nil, err
		}
		runs[i] = run
		agents[i] = run.agent
	}
	if err := system.Run(agents...); err != nil {
		return nil, err
	}

	out := &SharedProbeResult{}
	for i, run := range runs {
		pr, err := run.finish()
		if err != nil {
			return nil, err
		}
		out.Agents = append(out.Agents, AgentProbeResult{Name: names[i], ProbeResult: *pr})
		if pr.Cycles > out.SystemCycles {
			out.SystemCycles = pr.Cycles
		}
	}
	out.SharedStats = sl.Stats()
	out.MSHRSaturationShare = out.SharedStats.MSHRSaturationShare(s.opts.Memory.L1MSHRs)
	out.BandwidthUtilization = s.opts.Memory.MemBandwidthUtilization(out.SharedStats.MemBlocks, out.SystemCycles)
	return out, nil
}

// translatePayloads converts walker-emitted payloads into the same payload
// domain the software probe reports (row identifiers for the indirect
// layout).
func translatePayloads(ix *Index, raw []uint64) []uint64 {
	if ix.table.Config().Layout != hashidx.LayoutIndirect {
		return append([]uint64(nil), raw...)
	}
	out := make([]uint64, len(raw))
	base := ix.table.KeyColumnBase()
	for i, r := range raw {
		out[i] = (r - base) / 8
	}
	return out
}

// Comparison is the side-by-side result of running the same probes on every
// design, the shape of the paper's headline evaluation.
type Comparison struct {
	Results map[string]*ProbeResult
	// IndexSpeedup is each design's speedup over the OoO baseline.
	IndexSpeedup map[string]float64
	// EnergyReduction is each design's energy saving relative to OoO.
	EnergyReduction map[string]float64
}

// Compare runs the probe keys on the OoO baseline, the in-order core and Widx
// with 1, 2 and 4 walkers.
func (s *System) Compare(ix *Index, keys []uint64) (*Comparison, error) {
	designs := []Design{OoO(), InOrder(), Widx(1), Widx(2), Widx(4)}
	cmp := &Comparison{
		Results:         map[string]*ProbeResult{},
		IndexSpeedup:    map[string]float64{},
		EnergyReduction: map[string]float64{},
	}
	for _, d := range designs {
		r, err := s.Probe(ix, ProbeRequest{Keys: keys, Design: d})
		if err != nil {
			return nil, err
		}
		cmp.Results[d.String()] = r
	}
	base := cmp.Results[OoO().String()]
	for name, r := range cmp.Results {
		cmp.IndexSpeedup[name] = float64(base.Cycles) / float64(r.Cycles)
		cmp.EnergyReduction[name] = 1 - r.EnergyJ/base.EnergyJ
	}
	return cmp, nil
}
