package colstore

import (
	"testing"
	"testing/quick"

	"widx/internal/vm"
)

func TestTableConstruction(t *testing.T) {
	tbl := NewTable("t")
	if err := tbl.AddColumn("a", []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("b", []uint64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 3 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	if err := tbl.AddColumn("a", []uint64{7}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := tbl.AddColumn("c", []uint64{1, 2}); err == nil {
		t.Fatal("mismatched row count accepted")
	}
	cols := tbl.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("columns = %v", cols)
	}
	c, err := tbl.Column("a")
	if err != nil || c.Len() != 3 {
		t.Fatal("column lookup failed")
	}
	if _, err := tbl.Column("zzz"); err == nil {
		t.Fatal("missing column lookup succeeded")
	}
	if tbl.MustColumn("b").Values[2] != 6 {
		t.Fatal("MustColumn wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustColumn should panic on missing column")
			}
		}()
		tbl.MustColumn("zzz")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustAddColumn should panic on error")
			}
		}()
		tbl.MustAddColumn("a", []uint64{9, 9, 9})
	}()
}

func TestMaterialize(t *testing.T) {
	tbl := NewTable("m").MustAddColumn("k", []uint64{10, 20, 30, 40})
	as := vm.New()
	base, err := tbl.Materialize(as, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{10, 20, 30, 40} {
		if got := as.Read64(base + uint64(i)*8); got != want {
			t.Fatalf("materialized[%d] = %d, want %d", i, got, want)
		}
	}
	if _, err := tbl.Materialize(as, "missing"); err == nil {
		t.Fatal("materializing a missing column succeeded")
	}
	empty := NewTable("e").MustAddColumn("x", nil)
	if _, err := empty.Materialize(as, "x"); err == nil {
		t.Fatal("materializing an empty column succeeded")
	}
}

func TestGeneratorDistributions(t *testing.T) {
	g := NewGenerator(42)
	seq := g.Sequential(5, 100)
	for i, v := range seq {
		if v != uint64(100+i) {
			t.Fatalf("Sequential wrong: %v", seq)
		}
	}
	uni := g.Uniform(10000, 10, 20)
	for _, v := range uni {
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	uu := g.UniqueUniform(1000, 0, 10000)
	seen := map[uint64]bool{}
	for _, v := range uu {
		if seen[v] {
			t.Fatal("UniqueUniform produced duplicates")
		}
		seen[v] = true
	}
	primary := []uint64{5, 7, 9}
	fk := g.ForeignKey(1000, primary)
	for _, v := range fk {
		if v != 5 && v != 7 && v != 9 {
			t.Fatalf("ForeignKey produced non-primary value %d", v)
		}
	}
	zfk := g.ZipfForeignKey(5000, primary, 1.2)
	counts := map[uint64]int{}
	for _, v := range zfk {
		counts[v]++
	}
	if counts[5] <= counts[9] {
		t.Fatalf("zipf skew should favour the first primary key: %v", counts)
	}

	// Determinism: same seed, same stream.
	a := NewGenerator(7).Uniform(100, 0, 1000)
	b := NewGenerator(7).Uniform(100, 0, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generator is not deterministic")
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	g := NewGenerator(1)
	for name, f := range map[string]func(){
		"uniform range": func() { g.Uniform(1, 5, 5) },
		"unique range":  func() { g.UniqueUniform(10, 0, 5) },
		"fk empty":      func() { g.ForeignKey(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSelectGatherSort(t *testing.T) {
	c := &Column{Name: "x", Values: []uint64{5, 1, 9, 3, 7}}
	rows := SelectRows(c, func(v uint64) bool { return v >= 5 })
	if len(rows) != 3 || rows[0] != 0 || rows[1] != 2 || rows[2] != 4 {
		t.Fatalf("SelectRows = %v", rows)
	}
	vals := Gather(c, rows)
	if len(vals) != 3 || vals[0] != 5 || vals[1] != 9 || vals[2] != 7 {
		t.Fatalf("Gather = %v", vals)
	}
	sorted := SortedCopy(c.Values)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("SortedCopy not sorted: %v", sorted)
		}
	}
	if c.Values[0] != 5 {
		t.Fatal("SortedCopy mutated the input")
	}
}

func TestGenerateDSS(t *testing.T) {
	db, err := GenerateDSS(DSSConfig{FactRows: 5000, DimensionRows: 200, Dimensions: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if db.Fact.Rows() != 5000 || len(db.Dimensions) != 3 {
		t.Fatalf("database shape wrong: fact=%d dims=%d", db.Fact.Rows(), len(db.Dimensions))
	}
	// Every fact foreign key must join with its dimension.
	for d, dim := range db.Dimensions {
		keys := map[uint64]bool{}
		for _, k := range dim.MustColumn("key").Values {
			keys[k] = true
		}
		if len(keys) != 200 {
			t.Fatalf("dimension %d keys not unique", d)
		}
		for _, fk := range db.Fact.MustColumn(DimensionKey(d)).Values {
			if !keys[fk] {
				t.Fatalf("fact fk%d value %d not present in dimension", d, fk)
			}
		}
	}
	// Skewed generation still joins.
	skewed, err := GenerateDSS(DSSConfig{FactRows: 1000, DimensionRows: 50, Dimensions: 1, Skew: 1.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Fact.Rows() != 1000 {
		t.Fatal("skewed generation wrong")
	}

	for _, bad := range []DSSConfig{
		{FactRows: 0, DimensionRows: 10, Dimensions: 1},
		{FactRows: 10, DimensionRows: 0, Dimensions: 1},
		{FactRows: 10, DimensionRows: 10, Dimensions: 0},
		{FactRows: 10, DimensionRows: 10, Dimensions: 1, Skew: -1},
	} {
		if _, err := GenerateDSS(bad); err == nil {
			t.Fatalf("invalid config accepted: %+v", bad)
		}
	}
}

// Property: foreign keys always reference primary keys, for arbitrary sizes.
func TestPropertyForeignKeyIntegrity(t *testing.T) {
	f := func(seed uint16, nRaw, dRaw uint8) bool {
		n := int(nRaw)%500 + 10
		d := int(dRaw)%50 + 2
		g := NewGenerator(uint64(seed) + 1)
		primary := g.UniqueUniform(d, 1, uint64(d)*20)
		pk := map[uint64]bool{}
		for _, p := range primary {
			pk[p] = true
		}
		for _, v := range g.ForeignKey(n, primary) {
			if !pk[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
