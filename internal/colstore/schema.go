package colstore

import "fmt"

// Synthetic decision-support schemas.
//
// The paper evaluates MonetDB on TPC-H and TPC-DS at scale factor 100. Those
// data sets cannot be redistributed, so the workload generators below create
// structurally similar synthetic databases: a fact table with foreign keys
// into a handful of dimension tables, with the row-count ratios of the
// benchmark schemas. What matters to Widx is (a) how large the per-column
// join indexes are relative to the cache hierarchy and (b) how many probes a
// join performs — both of which the generators control directly.

// DSSConfig sizes a synthetic decision-support database.
type DSSConfig struct {
	// FactRows is the number of rows in the fact table (lineitem-like or
	// store_sales-like).
	FactRows int
	// DimensionRows is the number of rows in each dimension table.
	DimensionRows int
	// Dimensions is the number of dimension tables (TPC-DS spreads the same
	// data over far more columns/tables than TPC-H, which is why its
	// per-column indexes are small).
	Dimensions int
	// Skew, when positive, draws fact foreign keys with a zipfian skew.
	Skew float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Validate reports sizing errors.
func (c DSSConfig) Validate() error {
	if c.FactRows <= 0 || c.DimensionRows <= 0 {
		return fmt.Errorf("colstore: table sizes must be positive")
	}
	if c.Dimensions <= 0 {
		return fmt.Errorf("colstore: need at least one dimension table")
	}
	if c.Skew < 0 {
		return fmt.Errorf("colstore: negative skew")
	}
	return nil
}

// Database is a generated synthetic DSS database.
type Database struct {
	Fact       *Table
	Dimensions []*Table
}

// DimensionKey returns the join-key column name of dimension i in the fact
// table.
func DimensionKey(i int) string { return fmt.Sprintf("fk%d", i) }

// GenerateDSS builds the synthetic database: each dimension has a unique
// `key` column plus a `value` attribute, and the fact table has one foreign
// key per dimension plus a `measure` column.
func GenerateDSS(cfg DSSConfig) (*Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := NewGenerator(cfg.Seed)
	db := &Database{Fact: NewTable("fact")}

	factCols := make(map[string][]uint64, cfg.Dimensions+1)
	for d := 0; d < cfg.Dimensions; d++ {
		dim := NewTable(fmt.Sprintf("dim%d", d))
		// Keys are drawn from a sparse space so hash distribution is realistic
		// (real benchmark keys are not dense 0..n-1 integers after selection).
		keys := g.UniqueUniform(cfg.DimensionRows, 1, uint64(cfg.DimensionRows)*16+1)
		if err := dim.AddColumn("key", keys); err != nil {
			return nil, err
		}
		if err := dim.AddColumn("value", g.Uniform(cfg.DimensionRows, 0, 1_000_000)); err != nil {
			return nil, err
		}
		db.Dimensions = append(db.Dimensions, dim)

		if cfg.Skew > 0 {
			factCols[DimensionKey(d)] = g.ZipfForeignKey(cfg.FactRows, keys, cfg.Skew)
		} else {
			factCols[DimensionKey(d)] = g.ForeignKey(cfg.FactRows, keys)
		}
	}
	factCols["measure"] = g.Uniform(cfg.FactRows, 0, 10_000)

	// Attach fact columns in a stable order: fk0..fkN, then measure.
	for d := 0; d < cfg.Dimensions; d++ {
		if err := db.Fact.AddColumn(DimensionKey(d), factCols[DimensionKey(d)]); err != nil {
			return nil, err
		}
	}
	if err := db.Fact.AddColumn("measure", factCols["measure"]); err != nil {
		return nil, err
	}
	return db, nil
}
