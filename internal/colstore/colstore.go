// Package colstore is a minimal column-oriented storage layer in the spirit
// of MonetDB: tables are collections of equal-length typed columns, queries
// operate on column vectors and produce row-identifier lists, and data for
// join columns can be materialized into the simulated address space so the
// hash index and the timing models see realistic memory layouts.
//
// The package also contains the synthetic data generators used in place of
// the licensed TPC-H and TPC-DS data sets: uniform and zipfian value
// distributions and foreign-key columns referencing another table's rows,
// which is what drives the join-index probe streams.
package colstore

import (
	"fmt"
	"sort"

	"widx/internal/stats"
	"widx/internal/vm"
)

// Column is a named vector of 64-bit values. All values are stored as uint64;
// interpretation (integer, date ordinal, identifier) is up to the query.
type Column struct {
	Name   string
	Values []uint64
}

// Len returns the number of rows in the column.
func (c *Column) Len() int { return len(c.Values) }

// Table is a named collection of equal-length columns.
type Table struct {
	Name    string
	columns map[string]*Column
	order   []string
	rows    int
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{Name: name, columns: make(map[string]*Column)}
}

// AddColumn attaches a column to the table. The first column fixes the row
// count; later columns must match it.
func (t *Table) AddColumn(name string, values []uint64) error {
	if _, dup := t.columns[name]; dup {
		return fmt.Errorf("colstore: table %q already has column %q", t.Name, name)
	}
	if len(t.columns) == 0 {
		t.rows = len(values)
	} else if len(values) != t.rows {
		return fmt.Errorf("colstore: column %q has %d rows, table %q has %d",
			name, len(values), t.Name, t.rows)
	}
	t.columns[name] = &Column{Name: name, Values: values}
	t.order = append(t.order, name)
	return nil
}

// MustAddColumn is AddColumn for table-construction literals; it panics on
// error.
func (t *Table) MustAddColumn(name string, values []uint64) *Table {
	if err := t.AddColumn(name, values); err != nil {
		panic(err)
	}
	return t
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	c, ok := t.columns[name]
	if !ok {
		return nil, fmt.Errorf("colstore: table %q has no column %q", t.Name, name)
	}
	return c, nil
}

// MustColumn returns the named column and panics if it is missing; for use
// after schema validation.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Columns returns the column names in insertion order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Materialize writes the named column into the simulated address space as a
// dense 64-bit array and returns its base address. This is how probe-side key
// columns and build-side base columns become visible to the memory-hierarchy
// timing model.
func (t *Table) Materialize(as *vm.AddressSpace, column string) (uint64, error) {
	c, err := t.Column(column)
	if err != nil {
		return 0, err
	}
	if c.Len() == 0 {
		return 0, fmt.Errorf("colstore: cannot materialize empty column %q", column)
	}
	base := as.AllocAligned(t.Name+"."+column, uint64(c.Len())*8)
	for i, v := range c.Values {
		as.Write64(base+uint64(i)*8, v)
	}
	return base, nil
}

// Generator produces synthetic column data deterministically from a seed.
type Generator struct {
	rng *stats.RNG
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed uint64) *Generator {
	return &Generator{rng: stats.NewRNG(seed)}
}

// Sequential returns 0..n-1 offset by start, the natural surrogate-key column.
func (g *Generator) Sequential(n int, start uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)
	}
	return out
}

// Uniform returns n values drawn uniformly from [lo, hi).
func (g *Generator) Uniform(n int, lo, hi uint64) []uint64 {
	if hi <= lo {
		panic("colstore: Uniform needs hi > lo")
	}
	out := make([]uint64, n)
	span := hi - lo
	for i := range out {
		out[i] = lo + g.rng.Uint64n(span)
	}
	return out
}

// UniqueUniform returns n distinct values in [lo, hi); it panics if the range
// cannot hold n distinct values. Used for build-side join keys.
func (g *Generator) UniqueUniform(n int, lo, hi uint64) []uint64 {
	if hi-lo < uint64(n) {
		panic("colstore: range too small for distinct values")
	}
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		v := lo + g.rng.Uint64n(hi-lo)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ForeignKey returns n values drawn from the given primary-key column,
// uniformly, so every generated value joins with exactly one build row.
func (g *Generator) ForeignKey(n int, primary []uint64) []uint64 {
	if len(primary) == 0 {
		panic("colstore: ForeignKey needs a non-empty primary key column")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = primary[g.rng.Intn(len(primary))]
	}
	return out
}

// ZipfForeignKey draws foreign keys with a zipfian skew over the primary
// keys, modelling popular items dominating a fact table.
func (g *Generator) ZipfForeignKey(n int, primary []uint64, s float64) []uint64 {
	z := stats.NewZipf(g.rng, len(primary), s)
	out := make([]uint64, n)
	for i := range out {
		out[i] = primary[z.Next()]
	}
	return out
}

// SelectRows returns the row identifiers whose column value satisfies pred,
// the building block of the scan operator.
func SelectRows(c *Column, pred func(uint64) bool) []uint32 {
	var out []uint32
	for i, v := range c.Values {
		if pred(v) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// Gather returns the column values at the given row identifiers.
func Gather(c *Column, rows []uint32) []uint64 {
	out := make([]uint64, len(rows))
	for i, r := range rows {
		out[i] = c.Values[r]
	}
	return out
}

// SortedCopy returns the values sorted ascending (used by the sort operator
// and the sort-merge join baseline).
func SortedCopy(values []uint64) []uint64 {
	out := append([]uint64(nil), values...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
