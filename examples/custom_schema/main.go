// Custom-schema example: demonstrates the Widx programming API of Section 4.2
// by hand-writing the dispatcher / walker / producer programs in Widx
// assembly for a custom node layout, assembling them, packing them into a
// control block, and configuring the accelerator from that block — exactly
// the path a database developer targeting Widx would follow.
//
// The custom layout here is a fixed-size open-addressing-style slot array:
// each bucket is a single 16-byte slot [key][payload] with no chains, probed
// with the simple masked-XOR hash of Listing 1.
//
// Run with:
//
//	go run ./examples/custom_schema
package main

import (
	"fmt"
	"log"

	"widx/internal/isa"
	"widx/internal/mem"
	"widx/internal/stats"
	"widx/internal/vm"
	"widx/internal/widx"
)

const slotSize = 16 // [key u64][payload u64]

func main() {
	// 1. Lay out the custom table in the simulated address space.
	as := vm.New()
	const buckets = 1 << 14
	tableBase := as.AllocAligned("slots", buckets*slotSize)
	resultBase := as.AllocAligned("results", 1<<20)

	rng := stats.NewRNG(7)
	var keys []uint64
	for len(keys) < 6000 {
		k := uint64(rng.Uint32()) | 1
		idx := ((k & 0xFFFF_FFFF) ^ 0xB1C9_51E7) & (buckets - 1)
		slot := tableBase + idx*slotSize
		if as.Read64(slot) == 0 { // first writer wins; collisions are dropped
			as.Write64(slot, k)
			as.Write64(slot+8, uint64(len(keys))+1000)
			keys = append(keys, k)
		}
	}

	// 2. Write the three unit programs in Widx assembly.
	dispatcher := mustAssemble(fmt.Sprintf(`
.name  custom_hash
.unit  dispatcher
.in    r1                 ; address of the probe key
.out   r2, r3             ; slot address, key
.const r10, 0xFFFFFFFF    ; mask
.const r11, 0xB1C951E7    ; prime
.const r12, %#x           ; table base
.const r13, %#x           ; bucket mask
    ld     r3, [r1+0]
    and    r4, r3, r10
    xor    r4, r4, r11
    and    r4, r4, r13
    addshf r2, r12, r4, 4  ; base + idx*16
    touch  [r2+0]          ; demand the slot ahead of the walk
    emit
    halt
`, tableBase, buckets-1))

	walker := mustAssemble(`
.name custom_walk
.unit walker
.in   r1, r2              ; slot address, probe key
.out  r3                  ; payload
    ld   r4, [r1+0]       ; slot key
    cmp  r5, r4, r2
    ble  r5, r0, miss     ; not equal -> done (no chains in this layout)
    ld   r3, [r1+8]
    emit
miss:
    halt
`)

	producer := mustAssemble(fmt.Sprintf(`
.name custom_produce
.unit producer
.in   r1
.const r20, %#x
    st  [r20+0], r1
    add r20, r20, #8
    halt
`, resultBase))

	// 3. Pack the programs into a control block (what the host core points
	// Widx at) and configure the accelerator from it.
	cb, err := isa.BuildControlBlock(dispatcher, walker, producer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control block: %d sections, %d bytes\n", len(cb.Sections), cb.SizeBytes())

	// 3b. Build the machine with the topology API: a shared spec (LLC, fill
	// buffers, memory bandwidth) plus a per-agent private spec (L1, ports,
	// MSHRs, TLB, LLC way partition). Start from the Table 2 topology and
	// customize both tiers: double the shared fill buffers, then attach an
	// accelerator agent with a 6-entry private MSHR budget confined to 8 of
	// the 16 LLC ways — the kind of heterogeneous design point the flat
	// config could not express. More agents (with their own specs) on the
	// same shared level would co-run against this one.
	top := mem.DefaultTopology()
	top.Shared.FillBuffers = 20
	if err := top.Validate(); err != nil {
		log.Fatal(err)
	}
	shared := mem.NewSharedLevel(top)
	spec := top.Agent("custom-widx")
	spec.MSHRs = 6
	spec.LLCWays = 8
	hier := shared.NewAgent(spec)
	acc, err := widx.NewFromControlBlock(widx.Config{NumWalkers: 4, QueueDepth: 2}, hier, as, cb)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Materialize a probe key column (half hits, half misses) and offload.
	probes := make([]uint64, 20000)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = keys[rng.Intn(len(keys))]
		} else {
			probes[i] = uint64(rng.Uint32()) | 1
		}
	}
	keyBase := as.AllocAligned("probe.keys", uint64(len(probes))*8)
	for i, k := range probes {
		as.Write64(keyBase+uint64(i)*8, k)
	}
	res, err := acc.Offload(widx.OffloadRequest{KeyBase: keyBase, KeyCount: uint64(len(probes))})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Check the accelerator's answers against a software probe.
	expected := 0
	for _, k := range probes {
		idx := ((k & 0xFFFF_FFFF) ^ 0xB1C9_51E7) & (buckets - 1)
		if as.Read64(tableBase+idx*slotSize) == k {
			expected++
		}
	}
	fmt.Printf("probes: %d, matches: %d (software check: %d)\n", len(probes), len(res.Matches), expected)
	fmt.Printf("cycles/tuple: %.1f, walker utilization: %.0f%%, matches stored at %#x\n",
		res.CyclesPerTuple(), 100*res.WalkerUtilization(), resultBase)
	if len(res.Matches) != expected {
		log.Fatal("accelerator and software disagree")
	}
}

func mustAssemble(src string) *isa.Program {
	p, err := isa.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
