// Quickstart: build a hash index, probe it through the Widx accelerator and
// compare against the out-of-order and in-order baseline cores.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"widx/internal/core"
	"widx/internal/stats"
)

func main() {
	// 1. Create a simulated system with the paper's Table 2 memory hierarchy.
	sys, err := core.NewSystem(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a hash index over 100K build-side keys (the inner relation of
	// a join), using MonetDB's indirect node layout and a robust hash.
	rng := stats.NewRNG(2013)
	buildKeys := make([]uint64, 100_000)
	seen := make(map[uint64]bool, len(buildKeys))
	for i := range buildKeys {
		for {
			k := rng.Uint64()>>1 + 1
			if !seen[k] {
				buildKeys[i], seen[k] = k, true
				break
			}
		}
	}
	index, err := sys.BuildIndex(core.IndexSpec{
		Name:   "quickstart",
		Keys:   buildKeys,
		Layout: core.LayoutIndirect,
		Hash:   core.HashRobust,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d buckets, %.2f nodes/bucket, %.1f KB working set\n",
		index.Buckets(), index.AvgNodesPerBucket(), float64(index.FootprintBytes())/1024)

	// 3. Probe with 50K outer-relation keys (all of which join).
	probeKeys := make([]uint64, 50_000)
	for i := range probeKeys {
		probeKeys[i] = buildKeys[rng.Intn(len(buildKeys))]
	}

	// 4. Compare every design: OoO baseline, in-order core, Widx with 1, 2
	// and 4 walkers.
	cmp, err := sys.Compare(index, probeKeys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %14s %12s %10s %10s\n", "design", "cycles/tuple", "speedup", "energy", "matches")
	for _, name := range []string{"ooo", "in-order", "widx-1w", "widx-2w", "widx-4w"} {
		r := cmp.Results[name]
		fmt.Printf("%-10s %14.1f %11.2fx %9.2fmJ %10d\n",
			name, r.CyclesPerTuple, cmp.IndexSpeedup[name], r.EnergyJ*1e3, r.Matches)
	}
	fmt.Printf("\nWidx (4 walkers) speedup over OoO: %.2fx, energy reduction: %.0f%%\n",
		cmp.IndexSpeedup["widx-4w"], 100*cmp.EnergyReduction["widx-4w"])

	// 5. The system API: co-schedule several agents — here two Widx
	// accelerators next to an OoO core — on ONE shared LLC, MSHR pool and
	// memory-bandwidth schedule, each probing its own key stream. This is
	// the paper's CMP deployment; the per-agent stats attribute the shared
	// pressure to its source.
	shared, err := sys.ProbeShared(index, core.SharedProbeRequest{
		Agents: []core.AgentSpec{
			{Name: "widx-a", Design: core.Widx(4)},
			{Name: "widx-b", Design: core.Widx(4)},
			{Name: "host", Design: core.OoO()},
		},
		Keys: [][]uint64{probeKeys[:15_000], probeKeys[15_000:30_000], probeKeys[30_000:45_000]},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared-memory co-run (3 agents, one hierarchy):\n")
	for _, a := range shared.Agents {
		fmt.Printf("  %-8s %10.1f cycles/tuple, %6d LLC misses, %5d MSHR-stall cycles\n",
			a.Name, a.CyclesPerTuple, a.MemStats.LLCMisses, a.MemStats.MSHRStallCycles)
	}
	fmt.Printf("  system: %d cycles, shared MSHR pool full %.0f%% of cycles, %.0f%% off-chip bandwidth\n",
		shared.SystemCycles, 100*shared.MSHRSaturationShare, 100*shared.BandwidthUtilization)
}
