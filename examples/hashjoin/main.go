// Hash-join kernel example: reproduces the Figure 8 experiment shape at a
// reduced scale — the "no partitioning" hash join kernel probed by the OoO
// baseline and by Widx with 1, 2 and 4 walkers, across the Small, Medium and
// Large index size classes.
//
// Run with:
//
//	go run ./examples/hashjoin
package main

import (
	"fmt"
	"log"

	"widx/internal/join"
	"widx/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.Scale = 1.0 / 128   // shrink the paper's 128M-tuple Large index
	cfg.SampleProbes = 8000 // detailed-simulation sample per design

	// Functional check first: the kernel's probe phase and the classic
	// software join algorithms agree on the match count.
	kernel, err := join.BuildKernel(join.DefaultKernelConfig(join.Small, cfg.Scale))
	if err != nil {
		log.Fatal(err)
	}
	matches := kernel.SoftwareProbe()
	if native := join.HashJoinNative(kernel.BuildKeys, kernel.ProbeKeys); native != matches {
		log.Fatalf("join algorithms disagree: %d vs %d", matches, native)
	}
	fmt.Printf("functional check: %d probes, %d matches (hash join == native join)\n\n",
		len(kernel.ProbeKeys), matches)

	// Timing study (Figure 8).
	exp, err := cfg.RunKernel([]join.SizeClass{join.Small, join.Medium, join.Large})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.Text())

	// CMP contention study: four Widx agents co-run a partitioned join on
	// one shared LLC / MSHR pool / memory-bandwidth schedule (the paper's
	// 4-core deployment), compared against solo runs of each partition.
	specs, err := sim.ParseAgents("4xwidx:4w")
	if err != nil {
		log.Fatal(err)
	}
	cmpCfg := cfg
	cmpCfg.Scale = 1.0 / 8 // partitions sized so 4 of them overflow the LLC
	cmpCfg.SampleProbes = 2000
	cmpExp, err := cmpCfg.RunCMP(join.Medium, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(cmpExp.Text())
}
