// Analytics example: runs a TPC-H-like decision-support query through the
// mini column-store engine (scan -> hash-index join -> sort/aggregate),
// prints the Figure 2a-style operator breakdown, then offloads the indexing
// phase to Widx and reports the indexing and whole-query speedups.
//
// Every design point below executes on the system API: a single-agent
// shared memory level driven by the event scheduler (internal/system). The
// hashjoin and quickstart examples show the same API co-running several
// agents on one hierarchy.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"widx/internal/engine"
	"widx/internal/sim"
	"widx/internal/workloads"
)

func main() {
	// TPC-H q17 is the paper's most index-bound query (94% of execution time).
	q, err := workloads.ByName(workloads.TPCH, "q17")
	if err != nil {
		log.Fatal(err)
	}
	const scale = 1.0 / 64

	// 1. Execute the query in the engine and show where the time goes.
	res, err := engine.Run(engine.FromWorkload(q, scale))
	if err != nil {
		log.Fatal(err)
	}
	shares := res.Breakdown.Shares()
	fmt.Printf("query %s: %d probes, %d matches, aggregate=%d\n",
		res.Name, res.ProbeCount, res.MatchCount, res.Aggregate)
	fmt.Printf("operator breakdown: index %.0f%%  scan %.0f%%  sort&join %.0f%%  other %.0f%%  (paper: index %.0f%%)\n",
		100*shares.Index, 100*shares.Scan, 100*shares.SortJoin, 100*shares.Other,
		100*q.Paper.Breakdown.Index)
	fmt.Printf("index phase hash/walk split: %.0f%% hashing (paper Figure 2b: %.0f%%)\n\n",
		100*res.HashShare, 100*q.Paper.HashShare)

	// 2. Re-run the indexing phase on every design and report the speedups.
	cfg := sim.DefaultConfig()
	cfg.Scale = scale
	cfg.SampleProbes = 10000
	qres, err := cfg.RunQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexing cycles/tuple: OoO %.1f, in-order %.1f, Widx-4w %.1f\n",
		qres.OoOCyclesPerTuple, qres.InOrderCyclesPerTuple, qres.WidxCyclesPerTuple[4])
	fmt.Printf("indexing speedup (4 walkers): %.2fx (paper: %.1fx)\n",
		qres.IndexSpeedup[4], q.Paper.IndexSpeedup4W)
	fmt.Printf("whole-query speedup (Amdahl projection over the %.0f%% index share): %.2fx (paper: ~3.1x max)\n",
		100*q.Paper.Breakdown.Index, qres.QuerySpeedup4W)
}
