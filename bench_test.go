// Package widx_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation. Each benchmark runs the corresponding
// experiment at a reduced (laptop-affordable) workload scale and reports the
// headline quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints, for every figure, the measured values next to the ns/op noise.
// The -short flag shrinks the workloads further. EXPERIMENTS.md records a
// full paper-vs-measured comparison produced with cmd/experiments.
package widx_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"widx/internal/exp"
	"widx/internal/join"
	"widx/internal/model"
	"widx/internal/sampling"
	"widx/internal/sim"
	"widx/internal/warmstate"
	"widx/internal/workloads"
)

// benchConfig returns the simulation configuration used by the benchmarks.
// Design points fan out across all CPUs; the reported metrics are identical
// to a sequential run, only the wall clock changes.
func benchConfig(b *testing.B) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = 1.0 / 128
	cfg.SampleProbes = 8000
	cfg.Parallelism = runtime.NumCPU()
	if testing.Short() {
		cfg.Scale = 1.0 / 512
		cfg.SampleProbes = 2000
	}
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkTable2_MemoryHierarchy exercises the Table 2 configuration by
// building it and reporting its derived latencies and bandwidth.
func BenchmarkTable2_MemoryHierarchy(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if err := cfg.Mem.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Mem.MemLatencyCycles()), "mem-latency-cycles")
	b.ReportMetric(cfg.Mem.MemServiceIntervalCycles(), "mc-cycles/block")
	b.ReportMetric(float64(cfg.Mem.L1MSHRs), "l1-mshrs")
}

// BenchmarkFig2a_ExecutionBreakdown regenerates the Figure 2a execution-time
// breakdown for the full query inventory and reports the average measured
// indexing share per suite (paper: ~35% TPC-H, ~45% TPC-DS).
func BenchmarkFig2a_ExecutionBreakdown(b *testing.B) {
	cfg := benchConfig(b)
	var rows []sim.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cfg.RunBreakdowns(false)
		if err != nil {
			b.Fatal(err)
		}
	}
	var tpchSum, tpcdsSum float64
	var tpchN, tpcdsN int
	for _, r := range rows {
		if r.Query.Suite == workloads.TPCH {
			tpchSum += r.Measured.Index
			tpchN++
		} else {
			tpcdsSum += r.Measured.Index
			tpcdsN++
		}
	}
	b.ReportMetric(100*tpchSum/float64(tpchN), "tpch-index-share-%")
	b.ReportMetric(100*tpcdsSum/float64(tpcdsN), "tpcds-index-share-%")
	b.ReportMetric(float64(len(rows)), "queries")
}

// BenchmarkFig2b_IndexBreakdown regenerates the Figure 2b hash/walk split for
// the twelve simulated queries and reports the average hash share
// (paper: ~30% hashing on average, 68% maximum).
func BenchmarkFig2b_IndexBreakdown(b *testing.B) {
	cfg := benchConfig(b)
	var rows []sim.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = cfg.RunBreakdowns(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	sum, maxShare := 0.0, 0.0
	for _, r := range rows {
		sum += r.MeasuredHashShare
		if r.MeasuredHashShare > maxShare {
			maxShare = r.MeasuredHashShare
		}
	}
	b.ReportMetric(100*sum/float64(len(rows)), "avg-hash-share-%")
	b.ReportMetric(100*maxShare, "max-hash-share-%")
}

// BenchmarkFig4a_L1Bandwidth sweeps the analytical model's L1 bandwidth
// constraint and reports the walker count a single-ported L1 supports at a
// low LLC miss ratio (paper: ~6).
func BenchmarkFig4a_L1Bandwidth(b *testing.B) {
	p := model.Default()
	var curves []model.Series
	for i := 0; i < b.N; i++ {
		curves = model.Figure4a(p)
	}
	singlePort := p
	singlePort.L1Ports = 1
	b.ReportMetric(float64(singlePort.MaxWalkersByL1Ports(0)), "walkers@1port")
	b.ReportMetric(float64(p.MaxWalkersByL1Ports(0)), "walkers@2ports")
	b.ReportMetric(float64(len(curves)), "curves")
}

// BenchmarkFig4b_MSHR sweeps the MSHR constraint (paper: 8-10 MSHRs support
// four to five walkers).
func BenchmarkFig4b_MSHR(b *testing.B) {
	p := model.Default()
	for i := 0; i < b.N; i++ {
		_ = model.Figure4b(p)
	}
	b.ReportMetric(float64(p.MaxWalkersByMSHRs()), "walkers@10mshrs")
	p8 := p
	p8.MSHRs = 8
	b.ReportMetric(float64(p8.MaxWalkersByMSHRs()), "walkers@8mshrs")
}

// BenchmarkFig4c_OffChip sweeps the off-chip bandwidth constraint (paper:
// ~8 walkers per memory controller at low LLC miss ratios, ~4 at 100%).
func BenchmarkFig4c_OffChip(b *testing.B) {
	p := model.Default()
	for i := 0; i < b.N; i++ {
		_ = model.Figure4c(p)
	}
	b.ReportMetric(p.WalkersPerMC(0.1), "walkers/MC@miss0.1")
	b.ReportMetric(p.WalkersPerMC(1.0), "walkers/MC@miss1.0")
}

// BenchmarkFig5_WalkerUtilization sweeps the dispatcher/walker balance
// (paper: one dispatcher feeds up to four walkers except for very shallow
// buckets on cache-resident indexes).
func BenchmarkFig5_WalkerUtilization(b *testing.B) {
	p := model.Default()
	for i := 0; i < b.N; i++ {
		for _, depth := range []float64{1, 2, 3} {
			_ = model.Figure5(p, depth)
		}
	}
	b.ReportMetric(p.WalkerUtilization(0.5, 4, 2), "util@4walkers,2nodes")
	b.ReportMetric(p.WalkerUtilization(0.0, 8, 1), "util@8walkers,1node")
}

// runKernelOnce caches the kernel experiment across the two Figure 8 benches.
func runKernelOnce(b *testing.B, cfg sim.Config) *sim.KernelExperiment {
	exp, err := cfg.RunKernel([]join.SizeClass{join.Small, join.Medium, join.Large})
	if err != nil {
		b.Fatal(err)
	}
	return exp
}

// BenchmarkFig8a_KernelCycleBreakdown regenerates the Figure 8a walker cycle
// breakdown of the hash-join kernel and reports the Large/Small memory-cycle
// ratio (the paper's bars grow commensurately with the index size).
func BenchmarkFig8a_KernelCycleBreakdown(b *testing.B) {
	cfg := benchConfig(b)
	var exp *sim.KernelExperiment
	for i := 0; i < b.N; i++ {
		exp = runKernelOnce(b, cfg)
	}
	small1, _ := exp.Point(join.Small, 1)
	large1, _ := exp.Point(join.Large, 1)
	small4, _ := exp.Point(join.Small, 4)
	b.ReportMetric(large1.Breakdown.Mem/small1.Breakdown.Mem, "large/small-mem-ratio")
	b.ReportMetric(small4.Breakdown.Idle, "small-4w-idle-cyc/tuple")
	b.ReportMetric(large1.CyclesPerTuple/exp.NormalizationBase, "large-1w-normalized")
}

// BenchmarkFig8b_KernelSpeedup regenerates the Figure 8b speedups (paper:
// ~4% with one walker, up to 4x on the Large index with four walkers).
func BenchmarkFig8b_KernelSpeedup(b *testing.B) {
	cfg := benchConfig(b)
	var exp *sim.KernelExperiment
	for i := 0; i < b.N; i++ {
		exp = runKernelOnce(b, cfg)
	}
	large4, _ := exp.Point(join.Large, 4)
	b.ReportMetric(exp.GeoMeanSpeedup1W, "geomean-speedup-1w")
	b.ReportMetric(exp.GeoMeanSpeedup4W, "geomean-speedup-4w")
	b.ReportMetric(large4.Speedup, "large-speedup-4w")
}

// runSuiteOnce runs the twelve simulated DSS queries.
func runSuiteOnce(b *testing.B, cfg sim.Config) *sim.SuiteResult {
	suite, err := cfg.RunSimulatedQueries()
	if err != nil {
		b.Fatal(err)
	}
	return suite
}

// BenchmarkFig9a_TPCHCycles regenerates the TPC-H walker cycle breakdowns of
// Figure 9a and reports the 1-to-4-walker scaling of the most memory-bound
// query (q20).
func BenchmarkFig9a_TPCHCycles(b *testing.B) {
	cfg := benchConfig(b)
	var suite *sim.SuiteResult
	for i := 0; i < b.N; i++ {
		suite = runSuiteOnce(b, cfg)
	}
	for _, q := range suite.Queries {
		if q.Query.Suite == workloads.TPCH && q.Query.Name == "q20" {
			b.ReportMetric(q.WidxCyclesPerTuple[1], "q20-cpt-1w")
			b.ReportMetric(q.WidxCyclesPerTuple[4], "q20-cpt-4w")
			b.ReportMetric(q.WidxBreakdown[4].Mem/q.WidxBreakdown[4].Total(), "q20-mem-fraction")
		}
	}
}

// BenchmarkFig9b_TPCDSCycles regenerates the TPC-DS walker cycle breakdowns
// of Figure 9b; TPC-DS indexes are small, so cycles per tuple are much lower
// than TPC-H and idle (dispatcher-limited) time appears.
func BenchmarkFig9b_TPCDSCycles(b *testing.B) {
	cfg := benchConfig(b)
	var suite *sim.SuiteResult
	for i := 0; i < b.N; i++ {
		suite = runSuiteOnce(b, cfg)
	}
	var tpchCPT, tpcdsCPT, tpcdsIdle float64
	var nH, nDS int
	for _, q := range suite.Queries {
		if q.Query.Suite == workloads.TPCH {
			tpchCPT += q.WidxCyclesPerTuple[4]
			nH++
		} else {
			tpcdsCPT += q.WidxCyclesPerTuple[4]
			tpcdsIdle += q.WidxBreakdown[4].Idle
			nDS++
		}
	}
	b.ReportMetric(tpchCPT/float64(nH), "tpch-avg-cpt-4w")
	b.ReportMetric(tpcdsCPT/float64(nDS), "tpcds-avg-cpt-4w")
	b.ReportMetric(tpcdsIdle/float64(nDS), "tpcds-avg-idle-cyc")
}

// BenchmarkFig10_QuerySpeedup regenerates the Figure 10 indexing speedups
// (paper: 1.5x-5.5x, geometric mean 3.1x) and the Section 6.2 query-level
// projection (paper: geometric mean 1.5x).
func BenchmarkFig10_QuerySpeedup(b *testing.B) {
	cfg := benchConfig(b)
	var suite *sim.SuiteResult
	for i := 0; i < b.N; i++ {
		suite = runSuiteOnce(b, cfg)
	}
	minSp, maxSp := 1e9, 0.0
	for _, q := range suite.Queries {
		sp := q.IndexSpeedup[4]
		if sp < minSp {
			minSp = sp
		}
		if sp > maxSp {
			maxSp = sp
		}
	}
	b.ReportMetric(suite.GeoMeanIndexSpeedup[4], "geomean-index-speedup-4w")
	b.ReportMetric(minSp, "min-index-speedup-4w")
	b.ReportMetric(maxSp, "max-index-speedup-4w")
	b.ReportMetric(suite.GeoMeanQuerySpeedup, "geomean-query-speedup")
}

// BenchmarkFig11_EnergyDelay regenerates the Figure 11 energy comparison
// (paper: Widx cuts indexing energy by 83% and improves energy-delay by
// 17.5x over the OoO baseline; the in-order core is ~2.2x slower).
func BenchmarkFig11_EnergyDelay(b *testing.B) {
	cfg := benchConfig(b)
	var suite *sim.SuiteResult
	for i := 0; i < b.N; i++ {
		suite = runSuiteOnce(b, cfg)
	}
	b.ReportMetric(100*suite.Energy.EnergyReduction(suite.Energy.Widx), "widx-energy-reduction-%")
	b.ReportMetric(1/suite.Energy.Widx.EDP, "widx-edp-improvement-x")
	b.ReportMetric(suite.InOrderSlowdown, "inorder-slowdown-x")
}

// BenchmarkAblation_DecoupledHashing quantifies the Section 3.1 design
// choices: decoupling key hashing from the walk (paper: 29% lower traversal
// time) and sharing one dispatcher across walkers.
func BenchmarkAblation_DecoupledHashing(b *testing.B) {
	cfg := benchConfig(b)
	q20, err := workloads.ByName(workloads.TPCH, "q20")
	if err != nil {
		b.Fatal(err)
	}
	var ab *sim.AblationResult
	for i := 0; i < b.N; i++ {
		ab, err = cfg.RunHashingAblation(q20, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(1-1/ab.DecouplingGain), "decoupling-gain-%")
	b.ReportMetric(ab.SharedCPT/ab.PerWalkerCPT, "shared-vs-perwalker")
}

// BenchmarkWarmCacheSweep measures the warm-state cache on its target
// shape — a warm-invariant queue-depth sweep of the cmp experiment, where
// every grid point shares one table build and one hierarchy warm-up — by
// timing the sweep cold (cache off) and cached, requiring byte-identical
// reports, and writing the cold-vs-cached trajectory to
// BENCH_warmcache.json. The sweep runs sequentially: the ratio isolates
// the warm-up work the cache removes, not worker-pool overlap.
func BenchmarkWarmCacheSweep(b *testing.B) {
	e, ok := exp.Lookup("cmp")
	if !ok {
		b.Fatal("cmp experiment not registered")
	}
	axes := []exp.Axis{{Key: "queue-depth", Values: []string{"2", "4", "8", "16"}}}
	set := map[string]string{"size": "Medium", "agents": "widx:2w+ooo"}
	cfg := benchConfig(b)
	cfg.Scale = 1.0 / 2
	cfg.SampleProbes = 500
	cfg.Parallelism = 1
	if testing.Short() {
		cfg.Scale = 1.0 / 8
	}
	run := func(cache *warmstate.Cache) (string, time.Duration) {
		cfg := cfg
		cfg.WarmCache = cache
		start := time.Now()
		out, err := exp.RunSweep(e, cfg, set, axes)
		if err != nil {
			b.Fatal(err)
		}
		return out.Text(), time.Since(start)
	}
	coldBest := time.Duration(1<<63 - 1)
	cachedBest := coldBest
	for i := 0; i < b.N; i++ {
		coldText, cold := run(nil)
		cachedText, cached := run(warmstate.New())
		if coldText != cachedText {
			b.Fatal("cached sweep report diverges from the cold run")
		}
		if cold < coldBest {
			coldBest = cold
		}
		if cached < cachedBest {
			cachedBest = cached
		}
	}
	speedup := float64(coldBest) / float64(cachedBest)
	b.ReportMetric(speedup, "cold/cached-x")
	payload := struct {
		Sweep    string  `json:"sweep"`
		Points   int     `json:"points"`
		ColdNS   int64   `json:"cold_ns"`
		CachedNS int64   `json:"cached_ns"`
		Speedup  float64 `json:"speedup"`
	}{
		Sweep:    "cmp queue-depth=2,4,8,16 size=Medium agents=widx:2w+ooo",
		Points:   len(axes[0].Values),
		ColdNS:   coldBest.Nanoseconds(),
		CachedNS: cachedBest.Nanoseconds(),
		Speedup:  speedup,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_warmcache.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSampledSweep measures what sampled simulation buys on its
// intended shape — a full-detail kernel run versus the same run with only
// short detailed windows on the timing model and functional fast-forward
// between them — requiring the sampled run's match-stream fingerprint to
// verify and its plan not to degrade, and writing the full-vs-sampled
// trajectory to BENCH_sampling.json. Sequential, like the warm-cache
// benchmark: the ratio isolates the timing work sampling skips.
func BenchmarkSampledSweep(b *testing.B) {
	e, ok := exp.Lookup("kernel")
	if !ok {
		b.Fatal("kernel experiment not registered")
	}
	cfg := benchConfig(b)
	cfg.Scale = 1.0 / 16
	cfg.SampleProbes = 20000
	cfg.Parallelism = 1
	if testing.Short() {
		cfg.Scale = 1.0 / 64
		cfg.SampleProbes = 8000
	}
	set := map[string]string{"sizes": "Medium"}
	sampledSet := map[string]string{"sizes": "Medium",
		"sample-windows": "16", "sample-warmup": "64", "sample-period": "64"}
	run := func(set map[string]string) (*exp.RunOutput, time.Duration) {
		start := time.Now()
		out, err := exp.Run(e, cfg, set)
		if err != nil {
			b.Fatal(err)
		}
		return out, time.Since(start)
	}
	fullBest := time.Duration(1<<63 - 1)
	sampledBest := fullBest
	var report *sampling.Report
	for i := 0; i < b.N; i++ {
		_, full := run(set)
		sampled, sampledTime := run(sampledSet)
		r, ok := sampled.Result.(sim.SamplingReporter)
		if !ok || r.SamplingReport() == nil {
			b.Fatal("sampled run carries no sampling report")
		}
		report = r.SamplingReport()
		if report.Degraded {
			b.Fatal("sampled run degraded to full detail; stream too short for the plan")
		}
		if !report.FingerprintVerified {
			b.Fatal("sampled run's match stream was not fingerprint-verified")
		}
		if full < fullBest {
			fullBest = full
		}
		if sampledTime < sampledBest {
			sampledBest = sampledTime
		}
	}
	speedup := float64(fullBest) / float64(sampledBest)
	detailFraction := float64(report.MeasuredProbes) / float64(report.TotalProbes)
	b.ReportMetric(speedup, "full/sampled-x")
	b.ReportMetric(100*detailFraction, "measured-%")
	payload := struct {
		Run            string  `json:"run"`
		Windows        int     `json:"windows"`
		Warmup         uint64  `json:"warmup"`
		Period         uint64  `json:"period"`
		TotalProbes    uint64  `json:"total_probes"`
		MeasuredProbes uint64  `json:"measured_probes"`
		FullNS         int64   `json:"full_ns"`
		SampledNS      int64   `json:"sampled_ns"`
		Speedup        float64 `json:"speedup"`
	}{
		Run:            "kernel sizes=Medium",
		Windows:        report.Windows,
		Warmup:         report.Warmup,
		Period:         report.Period,
		TotalProbes:    report.TotalProbes,
		MeasuredProbes: report.MeasuredProbes,
		FullNS:         fullBest.Nanoseconds(),
		SampledNS:      sampledBest.Nanoseconds(),
		Speedup:        speedup,
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sampling.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblation_QueueDepth measures the sensitivity to the dispatcher
// queue depth called out in DESIGN.md.
func BenchmarkAblation_QueueDepth(b *testing.B) {
	cfg := benchConfig(b)
	q17, err := workloads.ByName(workloads.TPCH, "q17")
	if err != nil {
		b.Fatal(err)
	}
	var res *sim.QueryResult
	for i := 0; i < b.N; i++ {
		res, err = cfg.RunQuery(q17)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IndexSpeedup[4], "q17-speedup-4w")
	b.ReportMetric(res.WidxBreakdown[4].Idle, "q17-idle-cyc-4w")
}
